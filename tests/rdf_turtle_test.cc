#include "rdf/turtle_parser.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "rdf/turtle_writer.h"
#include "rdf/vocab.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

TripleStore ParseOk(const std::string& text) {
  TripleStore store;
  TurtleParser parser;
  Status st = parser.Parse(text, &store);
  EXPECT_TRUE(st.ok()) << st.ToString();
  store.Finalize();
  return store;
}

Status ParseErr(const std::string& text) {
  TripleStore store;
  TurtleParser parser;
  return parser.Parse(text, &store);
}

TEST(TurtleParserTest, SingleNTriple) {
  auto store = ParseOk("<http://a> <http://b> <http://c> .");
  EXPECT_EQ(store.NumTriples(), 1u);
}

TEST(TurtleParserTest, PrefixDeclaration) {
  auto store = ParseOk("@prefix ex: <http://ex/> .\nex:a ex:b ex:c .");
  ASSERT_EQ(store.NumTriples(), 1u);
  const Triple& t = store.triples()[0];
  EXPECT_EQ(store.dictionary().term(t.s).lexical(), "http://ex/a");
}

TEST(TurtleParserTest, SparqlStylePrefix) {
  auto store = ParseOk("PREFIX ex: <http://ex/>\nex:a ex:b ex:c .");
  EXPECT_EQ(store.NumTriples(), 1u);
}

TEST(TurtleParserTest, EmptyPrefix) {
  auto store = ParseOk("@prefix : <http://d/> .\n:x :y :z .");
  ASSERT_EQ(store.NumTriples(), 1u);
  EXPECT_EQ(store.dictionary().term(store.triples()[0].p).lexical(), "http://d/y");
}

TEST(TurtleParserTest, SemicolonPredicateList) {
  auto store = ParseOk(
      "@prefix e: <http://e/> .\n"
      "e:s e:p1 e:o1 ;\n"
      "    e:p2 e:o2 ;\n"
      "    e:p3 e:o3 .");
  EXPECT_EQ(store.NumTriples(), 3u);
}

TEST(TurtleParserTest, CommaObjectList) {
  auto store = ParseOk("@prefix e: <http://e/> .\ne:s e:p e:o1, e:o2, e:o3 .");
  EXPECT_EQ(store.NumTriples(), 3u);
  EXPECT_EQ(store.Scan(kNullTermId, kNullTermId, kNullTermId).size(), 3u);
}

TEST(TurtleParserTest, DanglingSemicolonTolerated) {
  auto store = ParseOk("@prefix e: <http://e/> .\ne:s e:p e:o ; .");
  EXPECT_EQ(store.NumTriples(), 1u);
}

TEST(TurtleParserTest, AKeyword) {
  auto store = ParseOk("@prefix e: <http://e/> .\ne:s a e:Class .");
  ASSERT_EQ(store.NumTriples(), 1u);
  EXPECT_EQ(store.dictionary().term(store.triples()[0].p).lexical(),
            std::string(vocab::kRdfType));
}

TEST(TurtleParserTest, BlankNodes) {
  auto store = ParseOk("_:x <http://p> _:y .");
  ASSERT_EQ(store.NumTriples(), 1u);
  EXPECT_TRUE(store.dictionary().term(store.triples()[0].s).is_blank());
  EXPECT_EQ(store.dictionary().term(store.triples()[0].o).lexical(), "y");
}

TEST(TurtleParserTest, PlainStringLiteral) {
  auto store = ParseOk("<http://s> <http://p> \"hello world\" .");
  ASSERT_EQ(store.NumTriples(), 1u);
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.datatype(), Term::Datatype::kString);
  EXPECT_EQ(o.lexical(), "hello world");
}

TEST(TurtleParserTest, EscapedStringLiteral) {
  auto store = ParseOk(R"(<http://s> <http://p> "a\"b\nc" .)");
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.lexical(), "a\"b\nc");
}

TEST(TurtleParserTest, LangTaggedLiteral) {
  auto store = ParseOk("<http://s> <http://p> \"salut\"@fr-CA .");
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.datatype(), Term::Datatype::kLangString);
  EXPECT_EQ(o.lang(), "fr-CA");
}

TEST(TurtleParserTest, TypedLiteralFullIri) {
  auto store = ParseOk(
      "<http://s> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.datatype(), Term::Datatype::kInteger);
  EXPECT_EQ(o.AsInt64().value(), 5);
}

TEST(TurtleParserTest, TypedLiteralPrefixedDatatype) {
  auto store = ParseOk(
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "<http://s> <http://p> \"2.5\"^^xsd:double .");
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.datatype(), Term::Datatype::kDouble);
}

TEST(TurtleParserTest, BareIntegers) {
  auto store = ParseOk("<http://s> <http://p> 42 .");
  const Term& o = store.dictionary().term(store.triples()[0].o);
  EXPECT_EQ(o.datatype(), Term::Datatype::kInteger);
  EXPECT_EQ(o.AsInt64().value(), 42);
}

TEST(TurtleParserTest, NegativeAndSignedNumbers) {
  auto store = ParseOk("<http://s> <http://p> -7, +3 .");
  EXPECT_EQ(store.NumTriples(), 2u);
}

TEST(TurtleParserTest, BareDoubles) {
  auto store = ParseOk("<http://s> <http://p> 3.25, 1e3, -2.5e-2 .");
  EXPECT_EQ(store.NumTriples(), 3u);
  for (const Triple& t : store.triples()) {
    EXPECT_EQ(store.dictionary().term(t.o).datatype(), Term::Datatype::kDouble);
  }
}

TEST(TurtleParserTest, BareBooleans) {
  auto store = ParseOk("<http://s> <http://p> true . <http://s> <http://q> false .");
  EXPECT_EQ(store.NumTriples(), 2u);
}

TEST(TurtleParserTest, Comments) {
  auto store = ParseOk(
      "# leading comment\n"
      "<http://s> <http://p> <http://o> . # trailing\n"
      "# done\n");
  EXPECT_EQ(store.NumTriples(), 1u);
}

TEST(TurtleParserTest, EmptyInput) {
  auto store = ParseOk("");
  EXPECT_EQ(store.NumTriples(), 0u);
  auto store2 = ParseOk("   \n # only a comment\n");
  EXPECT_EQ(store2.NumTriples(), 0u);
}

TEST(TurtleParserTest, NumberFollowedByStatementDot) {
  // The '.' after "42" terminates the statement and is not a decimal point.
  auto store = ParseOk("<http://s> <http://p> 42 .\n<http://a> <http://b> <http://c> .");
  EXPECT_EQ(store.NumTriples(), 2u);
}

// ------------------------------------------------------------- errors

TEST(TurtleParserTest, ErrorUndefinedPrefix) {
  Status st = ParseErr("nope:a <http://p> <http://o> .");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("undefined prefix"), std::string::npos);
}

TEST(TurtleParserTest, ErrorMissingDot) {
  EXPECT_FALSE(ParseErr("<http://a> <http://b> <http://c>").ok());
}

TEST(TurtleParserTest, ErrorLiteralSubject) {
  EXPECT_FALSE(ParseErr("\"lit\" <http://p> <http://o> .").ok());
}

TEST(TurtleParserTest, ErrorLiteralPredicate) {
  EXPECT_FALSE(ParseErr("<http://s> 42 <http://o> .").ok());
}

TEST(TurtleParserTest, ErrorUnterminatedString) {
  EXPECT_FALSE(ParseErr("<http://s> <http://p> \"open... .").ok());
}

TEST(TurtleParserTest, ErrorUnterminatedIri) {
  EXPECT_FALSE(ParseErr("<http://s <http://p> <http://o> .").ok());
}

TEST(TurtleParserTest, ErrorUnsupportedCollection) {
  Status st = ParseErr("<http://s> <http://p> ( <http://a> ) .");
  EXPECT_NE(st.message().find("not supported"), std::string::npos);
}

TEST(TurtleParserTest, ErrorUnsupportedAnonymousNode) {
  Status st = ParseErr("[ <http://p> <http://o> ] <http://q> <http://r> .");
  EXPECT_NE(st.message().find("not supported"), std::string::npos);
}

TEST(TurtleParserTest, ErrorBadEscape) {
  EXPECT_FALSE(ParseErr(R"(<http://s> <http://p> "bad\qescape" .)").ok());
}

TEST(TurtleParserTest, ErrorReportsLineNumbers) {
  Status st = ParseErr("<http://a> <http://b> <http://c> .\n<http://s> 13 <http://o> .");
  EXPECT_NE(st.message().find("turtle:2:"), std::string::npos) << st.ToString();
}

// ------------------------------------------------------------- writer

TEST(TurtleWriterTest, NTriplesRoundTrip) {
  auto store = ParseOk(
      "@prefix e: <http://e/> .\n"
      "e:s e:p e:o ; e:q \"lit\"@en, 42, 2.5, true .\n"
      "_:b e:p \"x\\ny\" .");
  TurtleWriter writer;
  std::string ntriples = writer.WriteNTriples(store);

  TripleStore reparsed;
  TurtleParser parser;
  SOFOS_ASSERT_OK(parser.Parse(ntriples, &reparsed));
  reparsed.Finalize();
  ASSERT_EQ(reparsed.NumTriples(), store.NumTriples());
  // Canonical N-Triples of a round-trip must be byte-identical.
  EXPECT_EQ(writer.WriteNTriples(reparsed), ntriples);
}

TEST(TurtleWriterTest, TurtleOutputUsesPrefixes) {
  auto store = ParseOk("@prefix e: <http://e/> .\ne:s e:p e:o .");
  TurtleWriter writer;
  writer.AddPrefix("e", "http://e/");
  std::string turtle = writer.WriteTurtle(store);
  EXPECT_NE(turtle.find("@prefix e: <http://e/>"), std::string::npos);
  EXPECT_NE(turtle.find("e:s e:p e:o"), std::string::npos);
}

TEST(TurtleWriterTest, TurtleRoundTripsThroughParser) {
  auto store = ParseOk(
      "@prefix e: <http://e/> .\n"
      "e:s e:p1 e:a ; e:p2 e:b .\n"
      "e:t e:p1 \"v\" .");
  TurtleWriter writer;
  writer.AddPrefix("e", "http://e/");
  TripleStore reparsed;
  TurtleParser parser;
  SOFOS_ASSERT_OK(parser.Parse(writer.WriteTurtle(store), &reparsed));
  reparsed.Finalize();
  EXPECT_EQ(reparsed.NumTriples(), store.NumTriples());
}

/// Property: random stores of mixed term types survive write → parse →
/// write with an identical triple set. (Line order may differ: the writer
/// emits triples in dictionary-id order, and reparsing assigns fresh ids.)
class TurtleRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TurtleRoundTripTest, WriteParseWriteIsStable) {
  Rng rng(GetParam());
  TripleStore store;
  for (int i = 0; i < 100; ++i) {
    Term s = rng.Chance(0.8)
                 ? Term::Iri("http://s/" + std::to_string(rng.Uniform(20)))
                 : Term::Blank("b" + std::to_string(rng.Uniform(5)));
    Term p = Term::Iri("http://p/" + std::to_string(rng.Uniform(6)));
    Term o;
    switch (rng.Uniform(6)) {
      case 0:
        o = Term::Iri("http://o/" + std::to_string(rng.Uniform(20)));
        break;
      case 1:
        o = Term::Integer(rng.UniformInt(-1000, 1000));
        break;
      case 2:
        o = Term::Double(rng.UniformDouble(-5, 5));
        break;
      case 3:
        o = Term::String("str-\"x\"-" + std::to_string(rng.Uniform(10)));
        break;
      case 4:
        o = Term::LangString("hello", rng.Chance(0.5) ? "en" : "de");
        break;
      default:
        o = Term::Boolean(rng.Chance(0.5));
    }
    store.Add(s, p, o);
  }
  store.Finalize();

  TurtleWriter writer;
  std::string first = writer.WriteNTriples(store);
  TripleStore reparsed;
  TurtleParser parser;
  SOFOS_ASSERT_OK(parser.Parse(first, &reparsed));
  reparsed.Finalize();
  std::string second = writer.WriteNTriples(reparsed);

  auto sorted_lines = [](const std::string& text) {
    auto lines = StrSplit(text, '\n');
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(second), sorted_lines(first));
  EXPECT_EQ(reparsed.NumTriples(), store.NumTriples());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TurtleRoundTripTest,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace sofos
