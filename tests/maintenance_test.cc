/// Tests for the incremental update & view-maintenance subsystem:
///   - TripleStore staged-delta merge vs full rebuild (all six indexes,
///     statistics, set-algebra edge cases, mutation-path exclusion)
///   - ApplyUpdates + ViewMaintainer vs full rebuild + rematerialization
///     on randomized insert/delete batches across all bundled datasets
///   - thread-count invariance of parallel maintenance
///   - staleness-driven re-selection triggering

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/maintenance/delta.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using core::maintenance::GraphDelta;
using core::maintenance::TermTriple;
using testing::ExpectSameAnswers;
using testing::MustExecute;

/// Decodes a store's canonical triples into sorted N-Triples lines —
/// content identity independent of dictionary ids.
std::vector<std::string> DecodedTriples(const TripleStore& store) {
  std::vector<std::string> lines;
  lines.reserve(store.NumTriples());
  const Dictionary& dict = store.dictionary();
  for (const Triple& t : store.triples()) {
    lines.push_back(dict.term(t.s).ToNTriples() + " " +
                    dict.term(t.p).ToNTriples() + " " +
                    dict.term(t.o).ToNTriples());
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(StoreDeltaTest, ApplyDeltaMatchesFullRebuild) {
  TripleStore store;
  testing::BuildFigure1Graph(&store);

  auto iri = [](const std::string& s) {
    return Term::Iri("http://example.org/" + s);
  };
  // Deletes of existing triples, adds of new ones, plus the edge cases:
  // delete of an absent triple, add of a present triple, and a triple
  // staged on both sides (must survive).
  store.StageDelete(iri("France"), iri("language"), Term::String("French"));
  store.StageDelete(iri("Italy"), iri("population"), Term::Integer(60000000));
  store.StageDelete(iri("Atlantis"), iri("name"), Term::String("Atlantis"));
  store.StageAdd(iri("Spain"), iri("name"), Term::String("Spain"));
  store.StageAdd(iri("Spain"), iri("population"), Term::Integer(47000000));
  store.StageAdd(iri("Germany"), iri("language"), Term::String("German"));
  store.StageAdd(iri("Canada"), iri("year"), Term::Integer(2019));
  store.StageDelete(iri("Canada"), iri("year"), Term::Integer(2019));

  uint64_t before = store.NumTriples();
  DeltaApplyResult result = store.ApplyDelta();
  // 2 real deletes; "Atlantis" is absent, "Canada year" is re-added.
  EXPECT_EQ(result.deletes_applied, 2u);
  // Spain name/population are new; "Germany language" and "Canada year"
  // already exist.
  EXPECT_EQ(result.adds_applied, 2u);
  EXPECT_EQ(store.NumTriples(), before);  // +2 -2
  EXPECT_TRUE(store.finalized());
  EXPECT_FALSE(store.HasStagedDelta());

  // Control: the same final triple set built through the legacy path.
  TripleStore control;
  for (const Triple& t : store.triples()) {
    const Dictionary& dict = store.dictionary();
    control.Add(dict.term(t.s), dict.term(t.p), dict.term(t.o));
  }
  control.Finalize();
  EXPECT_EQ(DecodedTriples(store), DecodedTriples(control));
  EXPECT_EQ(store.NumNodes(), control.NumNodes());
  EXPECT_EQ(store.NumPredicates(), control.NumPredicates());

  // Statistics and all six index orders answer like the control store.
  const Dictionary& dict = store.dictionary();
  for (const auto& [pred, stats] : store.predicate_stats()) {
    auto control_pred = control.dictionary().Lookup(dict.term(pred));
    ASSERT_TRUE(control_pred.has_value());
    const PredicateStats* control_stats = control.StatsFor(*control_pred);
    ASSERT_NE(control_stats, nullptr);
    EXPECT_EQ(stats.triples, control_stats->triples);
    EXPECT_EQ(stats.distinct_subjects, control_stats->distinct_subjects);
    EXPECT_EQ(stats.distinct_objects, control_stats->distinct_objects);
  }
  // Every bound-prefix pattern family over a sample of terms.
  for (const Triple& t : store.triples()) {
    auto cs = control.dictionary().Lookup(dict.term(t.s));
    auto cp = control.dictionary().Lookup(dict.term(t.p));
    auto co = control.dictionary().Lookup(dict.term(t.o));
    ASSERT_TRUE(cs && cp && co);
    EXPECT_EQ(store.Count(t.s, kNullTermId, kNullTermId),
              control.Count(*cs, kNullTermId, kNullTermId));
    EXPECT_EQ(store.Count(kNullTermId, t.p, kNullTermId),
              control.Count(kNullTermId, *cp, kNullTermId));
    EXPECT_EQ(store.Count(kNullTermId, kNullTermId, t.o),
              control.Count(kNullTermId, kNullTermId, *co));
    EXPECT_EQ(store.Count(t.s, t.p, kNullTermId),
              control.Count(*cs, *cp, kNullTermId));
    EXPECT_EQ(store.Count(kNullTermId, t.p, t.o),
              control.Count(kNullTermId, *cp, *co));
    EXPECT_EQ(store.Count(t.s, kNullTermId, t.o),
              control.Count(*cs, kNullTermId, *co));
    EXPECT_TRUE(store.Contains(t.s, t.p, t.o));
    EXPECT_TRUE(control.Contains(*cs, *cp, *co));
  }
}

TEST(StoreDeltaTest, ParallelMergeMatchesSerial) {
  ThreadPool pool(4);
  TripleStore serial, parallel;
  testing::BuildFigure1Graph(&serial);
  testing::BuildFigure1Graph(&parallel);

  auto iri = [](const std::string& s) {
    return Term::Iri("http://example.org/" + s);
  };
  for (TripleStore* store : {&serial, &parallel}) {
    store->StageAdd(iri("Spain"), iri("language"), Term::String("Spanish"));
    store->StageDelete(iri("Italy"), iri("language"), Term::String("Italian"));
  }
  DeltaApplyResult a = serial.ApplyDelta(nullptr);
  DeltaApplyResult b = parallel.ApplyDelta(&pool);
  EXPECT_EQ(a.adds_applied, b.adds_applied);
  EXPECT_EQ(a.deletes_applied, b.deletes_applied);
  EXPECT_EQ(DecodedTriples(serial), DecodedTriples(parallel));
}

TEST(StoreDeltaTest, ParallelFinalizeMatchesSerial) {
  ThreadPool pool(4);
  TripleStore serial, parallel;
  testing::BuildFigure1Graph(&serial);  // Finalizes serially
  auto iri = [](const std::string& s) {
    return Term::Iri("http://example.org/" + s);
  };
  for (const Triple& t : serial.triples()) {
    parallel.Add(serial.dictionary().term(t.s), serial.dictionary().term(t.p),
                 serial.dictionary().term(t.o));
  }
  parallel.Finalize(&pool);
  EXPECT_EQ(DecodedTriples(serial), DecodedTriples(parallel));
  EXPECT_EQ(serial.NumNodes(), parallel.NumNodes());
  EXPECT_EQ(serial.NumPredicates(), parallel.NumPredicates());
}

TEST(StoreDeltaDeathTest, MutationPathsCannotInterleave) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  TripleStore store;
  testing::BuildFigure1Graph(&store);
  store.StageAdd(Term::Iri("http://example.org/X"),
                 Term::Iri("http://example.org/name"), Term::String("X"));
  // The legacy mutation path must refuse to run over a pending delta.
  EXPECT_DEATH(store.Add(Term::Iri("http://example.org/Y"),
                         Term::Iri("http://example.org/name"),
                         Term::String("Y")),
               "staged delta is pending");
  EXPECT_DEATH(store.ReplaceTriples({}), "staged delta is pending");
  store.DiscardStagedDelta();
  // After discarding, the legacy path works again.
  store.Add(Term::Iri("http://example.org/Y"),
            Term::Iri("http://example.org/name"), Term::String("Y"));
  store.Finalize();
  // And staging requires a finalized store.
  store.Add(Term::Iri("http://example.org/Z"),
            Term::Iri("http://example.org/name"), Term::String("Z"));
  EXPECT_DEATH(store.StageAdd(Term::Iri("http://example.org/W"),
                              Term::Iri("http://example.org/name"),
                              Term::String("W")),
               "finalized store");
}

/// Canonical key for a term triple (tracking the expected base set).
std::string TripleKey(const TermTriple& t) {
  return t.s.ToNTriples() + " " + t.p.ToNTriples() + " " + t.o.ToNTriples();
}

/// Runs the full evolving-KG scenario on `dataset` with `num_threads` and
/// checks every batch against full rebuild + rematerialization.
void RunMaintenanceScenario(const std::string& dataset, unsigned num_threads) {
  SCOPED_TRACE(dataset + " threads=" + std::to_string(num_threads));

  core::SofosEngine inc;
  testing::SetUpEngine(&inc, dataset);
  inc.SetNumThreads(num_threads);
  testing::MustProfile(&inc);
  core::TripleCountCostModel model;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, inc.SelectViews(model, 3));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto views, inc.MaterializeSelection(selection));
  ASSERT_FALSE(views.empty());

  // Independent term-level tracking of the expected base set.
  std::map<std::string, TermTriple> expected_base;
  {
    const Dictionary& dict = inc.store()->dictionary();
    for (const Triple& t : inc.base_snapshot()) {
      TermTriple tt{dict.term(t.s), dict.term(t.p), dict.term(t.o)};
      expected_base.emplace(TripleKey(tt), tt);
    }
  }

  workload::UpdateStreamOptions options;
  options.num_batches = 3;
  options.batch_fraction = 0.02;
  options.delete_fraction = 0.4;
  options.seed = 7;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(inc.base_snapshot(),
                                     inc.store()->dictionary(), options));
  ASSERT_EQ(stream.size(), 3u);

  for (size_t batch = 0; batch < stream.size(); ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    const GraphDelta& delta = stream[batch];
    ASSERT_FALSE(delta.empty());
    SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome, inc.ApplyUpdates(delta));
    EXPECT_FALSE(outcome.maintenance.skipped);

    // Advance the expected base: (G \ deletes) ∪ adds.
    for (const TermTriple& t : delta.deletes) expected_base.erase(TripleKey(t));
    for (const TermTriple& t : delta.adds) {
      expected_base.emplace(TripleKey(t), t);
    }

    // The engine's base snapshot must track the expected set exactly.
    {
      std::vector<std::string> snapshot_lines;
      const Dictionary& dict = inc.store()->dictionary();
      for (const Triple& t : inc.base_snapshot()) {
        snapshot_lines.push_back(dict.term(t.s).ToNTriples() + " " +
                                 dict.term(t.p).ToNTriples() + " " +
                                 dict.term(t.o).ToNTriples());
      }
      std::sort(snapshot_lines.begin(), snapshot_lines.end());
      std::vector<std::string> expected_lines;
      for (const auto& [key, value] : expected_base) {
        (void)value;
        expected_lines.push_back(key);
      }
      std::sort(expected_lines.begin(), expected_lines.end());
      ASSERT_EQ(snapshot_lines, expected_lines);
    }

    // Reference: full rebuild from scratch + full rematerialization of the
    // same view set.
    core::SofosEngine ref;
    {
      TripleStore store;
      for (const auto& [key, t] : expected_base) {
        (void)key;
        store.Add(t.s, t.p, t.o);
      }
      store.Finalize();
      SOFOS_ASSERT_OK(ref.LoadStore(std::move(store)));
      TripleStore dummy;
      auto spec = datagen::GenerateByName(dataset, datagen::Scale::kTiny, 42,
                                          &dummy);
      ASSERT_TRUE(spec.ok());
      auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                           spec->dim_labels);
      ASSERT_TRUE(facet.ok());
      SOFOS_ASSERT_OK(ref.SetFacet(std::move(facet).value()));
      testing::MustProfile(&ref);
      SOFOS_ASSERT_OK(ref.MaterializeViews(selection.views).status());
    }

    // Same size G+: encodings carry the same rows (labels aside).
    EXPECT_EQ(inc.CurrentTriples(), ref.CurrentTriples());
    EXPECT_EQ(inc.BaseTriples(), ref.BaseTriples());

    // Every materialized view's encoding answers its canonical roll-up
    // query identically.
    core::Rewriter rewriter(&inc.facet());
    for (uint32_t mask : selection.views) {
      core::QuerySignature sig;
      sig.group_mask = mask;
      SOFOS_ASSERT_OK_AND_ASSIGN(std::string rewritten,
                                 rewriter.RewriteToView(sig, mask));
      ExpectSameAnswers(MustExecute(inc.store(), rewritten),
                        MustExecute(ref.store(), rewritten),
                        dataset + " view query mask " + std::to_string(mask));
    }

    // A workload routed through the views answers identically on both.
    workload::WorkloadGenerator generator(&ref.facet(), ref.store());
    workload::WorkloadOptions wopts;
    wopts.num_queries = 8;
    wopts.seed = 11 + batch;
    SOFOS_ASSERT_OK_AND_ASSIGN(auto queries, generator.Generate(wopts));
    for (const auto& query : queries) {
      SOFOS_ASSERT_OK_AND_ASSIGN(auto inc_out,
                                 inc.Answer(query, /*allow_views=*/true));
      SOFOS_ASSERT_OK_AND_ASSIGN(auto ref_out,
                                 ref.Answer(query, /*allow_views=*/true));
      ExpectSameAnswers(inc_out.result, ref_out.result,
                        dataset + " workload " + query.id);
    }
  }
}

TEST(ViewMaintenanceTest, MatchesFullRematerializationGeo) {
  RunMaintenanceScenario("geopop", 1);
}

TEST(ViewMaintenanceTest, MatchesFullRematerializationLubm) {
  RunMaintenanceScenario("lubm", 1);
}

TEST(ViewMaintenanceTest, MatchesFullRematerializationSwdf) {
  RunMaintenanceScenario("swdf", 1);
}

TEST(ViewMaintenanceTest, MatchesFullRematerializationParallel) {
  RunMaintenanceScenario("geopop", 4);
  RunMaintenanceScenario("lubm", 4);
}

TEST(ViewMaintenanceTest, ThreadCountInvariance) {
  // The maintained graph — including fresh blank-node labels — must be
  // byte-identical no matter how many threads maintain it.
  auto run = [](unsigned num_threads) {
    core::SofosEngine engine;
    testing::SetUpEngine(&engine, "geopop");
    engine.SetNumThreads(num_threads);
    testing::MustProfile(&engine);
    core::TripleCountCostModel model;
    auto selection = engine.SelectViews(model, 3);
    EXPECT_TRUE(selection.ok());
    EXPECT_TRUE(engine.MaterializeSelection(*selection).ok());

    workload::UpdateStreamOptions options;
    options.num_batches = 2;
    options.batch_fraction = 0.05;
    options.seed = 13;
    auto stream = workload::GenerateUpdateStream(
        engine.base_snapshot(), engine.store()->dictionary(), options);
    EXPECT_TRUE(stream.ok());
    for (const GraphDelta& delta : *stream) {
      auto outcome = engine.ApplyUpdates(delta);
      EXPECT_TRUE(outcome.ok());
    }
    return DecodedTriples(*engine.store());
  };
  std::vector<std::string> serial = run(1);
  std::vector<std::string> parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(ViewMaintenanceTest, MaintainerRebuildDoesNotCollideBlankLabels) {
  // Regression: the maintainer is rebuilt whenever the view set changes,
  // and its fresh-row counter must resume past the "mvm_" labels already
  // in the store — otherwise a later fresh key re-interns an existing
  // blank and attaches a second group key to it.
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  uint32_t root_mask = engine.facet().FullMask();
  SOFOS_ASSERT_OK(engine.MaterializeViews({root_mask}).status());

  workload::UpdateStreamOptions options;
  options.num_batches = 2;
  options.batch_fraction = 0.08;
  options.delete_fraction = 0.3;
  options.seed = 29;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));

  SOFOS_ASSERT_OK_AND_ASSIGN(auto first, engine.ApplyUpdates(stream[0]));
  ASSERT_FALSE(first.maintenance.views.empty());
  ASSERT_GT(first.maintenance.views[0].rows_added, 0u)
      << "scenario must mint fresh view rows to exercise the counter";

  // Changing the view set discards the maintainer; the next update
  // rebuilds it over a store that already contains mvm_ rows.
  SOFOS_ASSERT_OK(engine.MaterializeViews({0}).status());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto second, engine.ApplyUpdates(stream[1]));
  ASSERT_GT(second.maintenance.views[0].rows_added, 0u)
      << "scenario must mint fresh view rows after the rebuild";

  // Reference: full rebuild + rematerialization of the same final state.
  core::SofosEngine ref;
  {
    TripleStore store;
    const Dictionary& dict = engine.store()->dictionary();
    for (const Triple& t : engine.base_snapshot()) {
      store.Add(dict.term(t.s), dict.term(t.p), dict.term(t.o));
    }
    store.Finalize();
    SOFOS_ASSERT_OK(ref.LoadStore(std::move(store)));
    TripleStore dummy;
    auto spec =
        datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42, &dummy);
    ASSERT_TRUE(spec.ok());
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok());
    SOFOS_ASSERT_OK(ref.SetFacet(std::move(facet).value()));
    testing::MustProfile(&ref);
    SOFOS_ASSERT_OK(ref.MaterializeViews({root_mask, 0}).status());
  }
  EXPECT_EQ(engine.CurrentTriples(), ref.CurrentTriples());
  core::Rewriter rewriter(&engine.facet());
  for (uint32_t mask : {root_mask, 0u}) {
    core::QuerySignature sig;
    sig.group_mask = mask;
    SOFOS_ASSERT_OK_AND_ASSIGN(std::string rewritten,
                               rewriter.RewriteToView(sig, mask));
    ExpectSameAnswers(MustExecute(engine.store(), rewritten),
                      MustExecute(ref.store(), rewritten),
                      "view query after maintainer rebuild, mask " +
                          std::to_string(mask));
  }
}

TEST(ViewMaintenanceTest, OffPatternDeltaSkipsMaintenance) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  SOFOS_ASSERT_OK(engine.MaterializeViews({engine.facet().FullMask()}).status());

  GraphDelta delta;
  delta.adds.push_back(TermTriple{Term::Iri("http://example.org/meta"),
                                  Term::Iri("http://example.org/comment"),
                                  Term::String("not a facet predicate")});
  uint64_t before = engine.CurrentTriples();
  SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome, engine.ApplyUpdates(delta));
  EXPECT_TRUE(outcome.maintenance.skipped);
  EXPECT_EQ(outcome.adds_applied, 1u);
  EXPECT_EQ(engine.CurrentTriples(), before + 1);
  EXPECT_EQ(outcome.maintenance.root_rows_changed, 0u);
}

TEST(ViewMaintenanceTest, ReservedVocabularyRejected) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  GraphDelta delta;
  delta.adds.push_back(
      TermTriple{Term::Iri("http://example.org/x"),
                 Term::Iri("http://sofos.ics.forth.gr/vocab#value"),
                 Term::Integer(1)});
  auto outcome = engine.ApplyUpdates(delta);
  EXPECT_FALSE(outcome.ok());
}

using core::maintenance::MaintainMode;
using core::maintenance::MaintainOptions;

/// Engine over `dataset` with 3 greedily selected views and the given
/// maintenance-mode policy.
void SetUpMaintenanceEngine(core::SofosEngine* engine,
                            const std::string& dataset,
                            MaintainOptions::Mode mode,
                            unsigned num_threads = 1) {
  testing::SetUpEngine(engine, dataset);
  engine->SetNumThreads(num_threads);
  testing::MustProfile(engine);
  core::TripleCountCostModel model;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, engine->SelectViews(model, 3));
  SOFOS_ASSERT_OK(engine->MaterializeSelection(selection).status());
  MaintainOptions options;
  options.mode = mode;
  engine->SetMaintainOptions(options);
}

/// Tentpole equivalence property: the delta-rule path and the
/// recompute-and-diff path must produce byte-identical maintained graphs
/// (fresh blank labels included) across every delta shape.
TEST(DeltaMaintenanceTest, DeltaMatchesFullAcrossShapes) {
  for (const std::string& dataset : {"geopop", "lubm"}) {
    core::SofosEngine delta_engine, full_engine;
    SetUpMaintenanceEngine(&delta_engine, dataset,
                           MaintainOptions::Mode::kForceDelta);
    SetUpMaintenanceEngine(&full_engine, dataset,
                           MaintainOptions::Mode::kForceFull);

    // Adds-only, deletes-only and mixed batches, in sequence over the
    // same evolving graph.
    const double delete_fractions[] = {0.0, 1.0, 0.5};
    int shape = 0;
    for (double delete_fraction : delete_fractions) {
      SCOPED_TRACE(dataset + " delete_fraction=" +
                   std::to_string(delete_fraction));
      workload::UpdateStreamOptions options;
      options.num_batches = 1;
      options.batch_fraction = 0.03;
      options.delete_fraction = delete_fraction;
      options.seed = 17 + shape++;
      SOFOS_ASSERT_OK_AND_ASSIGN(
          auto stream, workload::GenerateUpdateStream(
                           delta_engine.base_snapshot(),
                           delta_engine.store()->dictionary(), options));
      SOFOS_ASSERT_OK_AND_ASSIGN(auto delta_out,
                                 delta_engine.ApplyUpdates(stream[0]));
      SOFOS_ASSERT_OK_AND_ASSIGN(auto full_out,
                                 full_engine.ApplyUpdates(stream[0]));
      if (!delta_out.maintenance.skipped) {
        EXPECT_EQ(delta_out.maintenance.mode, MaintainMode::kDelta)
            << delta_out.maintenance.Summary();
        EXPECT_EQ(full_out.maintenance.mode, MaintainMode::kFull);
      }
      ASSERT_EQ(DecodedTriples(*delta_engine.store()),
                DecodedTriples(*full_engine.store()));

      // Satellite: ApplyUpdates refreshes the profile's view sizes from
      // the maintained row counts — no re-profiling, yet routing and
      // staleness see fresh numbers.
      for (const core::MaterializedView& mv : delta_engine.materialized()) {
        EXPECT_EQ(delta_engine.profile()->ForMask(mv.mask).result_rows,
                  mv.rows)
            << "mask " << mv.mask;
      }
      uint32_t root_mask = delta_engine.facet().FullMask();
      EXPECT_EQ(
          delta_engine.profile()->ForMask(root_mask).result_rows,
          MustExecute(delta_engine.store(),
                      delta_engine.facet().ViewQuerySparql(root_mask))
              .NumRows());
    }
  }
}

TEST(DeltaMaintenanceTest, NoOpAndCancellingDeltasStayOnDeltaPath) {
  core::SofosEngine engine;
  SetUpMaintenanceEngine(&engine, "geopop", MaintainOptions::Mode::kForceDelta);

  // A base triple that carries a facet-pattern predicate (updates sample
  // from exactly this population).
  workload::UpdateStreamOptions options;
  options.num_batches = 1;
  options.batch_fraction = 0.02;
  options.delete_fraction = 1.0;
  options.seed = 23;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));
  ASSERT_FALSE(stream[0].deletes.empty());
  TermTriple present = stream[0].deletes[0];

  std::vector<std::string> before = DecodedTriples(*engine.store());

  // Delete-then-readd of the same triple: the add wins, the effective
  // delta is empty, and the delta path must recognize the no-op.
  GraphDelta cancelling;
  cancelling.adds.push_back(present);
  cancelling.deletes.push_back(present);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome, engine.ApplyUpdates(cancelling));
  EXPECT_FALSE(outcome.maintenance.skipped);
  EXPECT_EQ(outcome.maintenance.mode, MaintainMode::kDelta);
  EXPECT_EQ(outcome.maintenance.delta_bindings, 0u);
  EXPECT_EQ(outcome.maintenance.root_rows_changed, 0u);
  EXPECT_EQ(DecodedTriples(*engine.store()), before);

  // Add of a present triple + delete of an absent one: also effectively
  // empty.
  GraphDelta noop;
  noop.adds.push_back(present);
  noop.deletes.push_back(TermTriple{Term::Iri("http://example.org/ghost"),
                                    present.p, Term::Integer(123456)});
  SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome2, engine.ApplyUpdates(noop));
  EXPECT_EQ(outcome2.maintenance.mode, MaintainMode::kDelta);
  EXPECT_EQ(outcome2.maintenance.root_rows_changed, 0u);
  EXPECT_EQ(DecodedTriples(*engine.store()), before);
}

TEST(DeltaMaintenanceTest, MinMaxGroupsFallBackToTargetedReeval) {
  // MAX is not additively repairable: every touched group must be
  // re-evaluated exactly (regrouped_keys), and the result must still be
  // byte-identical to full recompute.
  auto make = [](core::SofosEngine* engine, MaintainOptions::Mode mode) {
    TripleStore store;
    store.SetShardCount(engine->ResolvedShardCount());
    auto spec =
        datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42, &store);
    ASSERT_TRUE(spec.ok());
    std::string max_facet = spec->facet_sparql;
    size_t pos = max_facet.find("SUM(?pop)");
    ASSERT_NE(pos, std::string::npos);
    max_facet.replace(pos, 9, "MAX(?pop)");
    // geopop has exactly one observation per (country, language, year), so
    // the full 4-dim grouping puts one row in every group and a delete can
    // only empty its group — which skips targeted re-evaluation entirely.
    // Drop ?year from the head and GROUP BY (the `geo:year` pattern stays)
    // so each group keeps one row per year and a delete leaves survivors
    // whose max must be re-evaluated.
    size_t head = max_facet.find("?year (MAX");
    ASSERT_NE(head, std::string::npos);
    max_facet.erase(head, 6);
    size_t tail = max_facet.rfind(" ?year");
    ASSERT_NE(tail, std::string::npos);
    max_facet.erase(tail, 6);
    std::vector<std::string> labels(spec->dim_labels.begin(),
                                    spec->dim_labels.end() - 1);
    auto facet = core::Facet::FromSparql(max_facet, "geomax", labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine->LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine->SetFacet(std::move(facet).value()));
    testing::MustProfile(engine);
    SOFOS_ASSERT_OK(
        engine->MaterializeViews({engine->facet().FullMask(), 0}).status());
    MaintainOptions options;
    options.mode = mode;
    engine->SetMaintainOptions(options);
  };
  core::SofosEngine delta_engine, full_engine;
  make(&delta_engine, MaintainOptions::Mode::kForceDelta);
  make(&full_engine, MaintainOptions::Mode::kForceFull);

  workload::UpdateStreamOptions options;
  options.num_batches = 2;
  options.batch_fraction = 0.05;
  options.delete_fraction = 1.0;  // deletes can retract a group's max
  options.seed = 31;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream, workload::GenerateUpdateStream(
                       delta_engine.base_snapshot(),
                       delta_engine.store()->dictionary(), options));
  uint64_t regrouped = 0;
  for (const GraphDelta& delta : stream) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto delta_out,
                               delta_engine.ApplyUpdates(delta));
    SOFOS_ASSERT_OK(full_engine.ApplyUpdates(delta).status());
    if (!delta_out.maintenance.skipped) {
      EXPECT_EQ(delta_out.maintenance.mode, MaintainMode::kDelta);
    }
    regrouped += delta_out.maintenance.regrouped_keys;
    ASSERT_EQ(DecodedTriples(*delta_engine.store()),
              DecodedTriples(*full_engine.store()));
  }
  EXPECT_GT(regrouped, 0u)
      << "MIN/MAX deltas must exercise the targeted re-evaluation path";
}

TEST(DeltaMaintenanceTest, CrossoverPolicySwitchesModes) {
  core::SofosEngine engine;
  SetUpMaintenanceEngine(&engine, "geopop", MaintainOptions::Mode::kAuto);

  workload::UpdateStreamOptions options;
  options.num_batches = 2;
  options.batch_fraction = 0.02;
  options.seed = 37;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));

  // A zero crossover classifies every non-empty delta as "large": the
  // fallback full recompute must kick in.
  MaintainOptions full_biased;
  full_biased.crossover_fraction = 0.0;
  engine.SetMaintainOptions(full_biased);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto full_out, engine.ApplyUpdates(stream[0]));
  ASSERT_FALSE(full_out.maintenance.skipped);
  EXPECT_EQ(full_out.maintenance.mode, MaintainMode::kFull);

  // A permissive crossover keeps the same-sized delta on the delta path.
  MaintainOptions delta_biased;
  delta_biased.crossover_fraction = 1.0;
  engine.SetMaintainOptions(delta_biased);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto delta_out, engine.ApplyUpdates(stream[1]));
  ASSERT_FALSE(delta_out.maintenance.skipped);
  EXPECT_EQ(delta_out.maintenance.mode, MaintainMode::kDelta);
}

TEST(DeltaMaintenanceTest, DeltaPathThreadCountInvariance) {
  // The delta path's maintained graph — fresh blank labels included —
  // must be byte-identical no matter how many threads maintain it.
  auto run = [](unsigned num_threads) {
    core::SofosEngine engine;
    SetUpMaintenanceEngine(&engine, "geopop",
                           MaintainOptions::Mode::kForceDelta, num_threads);
    workload::UpdateStreamOptions options;
    options.num_batches = 2;
    options.batch_fraction = 0.05;
    options.seed = 13;
    auto stream = workload::GenerateUpdateStream(
        engine.base_snapshot(), engine.store()->dictionary(), options);
    EXPECT_TRUE(stream.ok());
    for (const GraphDelta& delta : *stream) {
      auto outcome = engine.ApplyUpdates(delta);
      EXPECT_TRUE(outcome.ok());
      if (outcome.ok() && !outcome->maintenance.skipped) {
        EXPECT_EQ(outcome->maintenance.mode, MaintainMode::kDelta);
      }
    }
    return DecodedTriples(*engine.store());
  };
  std::vector<std::string> serial = run(1);
  std::vector<std::string> parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(StalenessTest, DriftTriggersReselection) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  SOFOS_ASSERT_OK(engine.MaterializeViews({engine.facet().FullMask()}).status());
  ASSERT_TRUE(engine.staleness_monitor().has_baseline());

  workload::UpdateStreamOptions options;
  options.num_batches = 1;
  options.batch_fraction = 0.02;
  options.seed = 3;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));

  // With an unreachable threshold nothing triggers; with a zero threshold
  // any churn does. Same delta, decided purely by the monitor.
  core::maintenance::StalenessOptions lax;
  lax.drift_threshold = 1e9;
  engine.SetStalenessOptions(lax);
  testing::MustProfile(&engine);  // re-anchor the baseline
  SOFOS_ASSERT_OK_AND_ASSIGN(auto calm, engine.ApplyUpdates(stream[0]));
  EXPECT_FALSE(calm.reselect_recommended);
  EXPECT_GT(calm.staleness, 0.0);

  core::maintenance::StalenessOptions strict;
  strict.drift_threshold = 1e-9;
  engine.SetStalenessOptions(strict);
  testing::MustProfile(&engine);
  options.seed = 4;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream2,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto drifted, engine.ApplyUpdates(stream2[0]));
  EXPECT_TRUE(drifted.reselect_recommended);
  EXPECT_GT(engine.staleness_monitor().drift(), 0.0);

  // Re-profiling (the re-selection flow) resets the baseline.
  testing::MustProfile(&engine);
  EXPECT_FALSE(engine.staleness_monitor().ShouldReselect());
  EXPECT_EQ(engine.staleness_monitor().drift(), 0.0);
}

}  // namespace
}  // namespace sofos
