/// Online serving subsystem tests: the shared latency histogram, the
/// protocol codec, the sharded LRU result cache (eviction, epoch
/// invalidation, concurrency), the engine's epoch-snapshot handle, and a
/// loopback integration suite — concurrent sessions issuing interleaved
/// QUERY and UPDATE traffic whose responses must be byte-identical to
/// direct EngineSnapshot::Answer calls at the matching epoch. The whole
/// file runs under the TSan lane (scripts/run_tsan.sh, label `server`).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/facet.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using server::BlockingClient;
using server::ClientResponse;
using server::NormalizeQueryText;
using server::ParseRequest;
using server::ResultCache;
using server::ResultCacheOptions;
using server::ServerOptions;
using server::SofosServer;
using server::Verb;

// ---- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogramTest, EmptyAndSingleSample) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.TakeSnapshot().P50(), 0.0);
  hist.Record(100.0);
  auto snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  // The estimate is the upper bound of the sample's bucket: within one
  // bucket ratio (1.5x) above the true value.
  EXPECT_GE(snap.P50(), 100.0);
  EXPECT_LE(snap.P50(), 150.0);
  EXPECT_EQ(snap.P50(), snap.P99());
}

TEST(LatencyHistogramTest, PercentilesOrderAndBounds) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  auto snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_LE(snap.P50(), snap.P95());
  EXPECT_LE(snap.P95(), snap.P99());
  // True p50 = 500, p95 = 950, p99 = 990; upper-bound estimates stay
  // within one bucket ratio.
  EXPECT_GE(snap.P50(), 500.0);
  EXPECT_LE(snap.P50(), 500.0 * 1.5);
  EXPECT_GE(snap.P99(), 990.0);
  EXPECT_LE(snap.P99(), 990.0 * 1.5);
  EXPECT_NEAR(snap.MeanMicros(), 500.5, 1.0);
}

TEST(LatencyHistogramTest, MergeAndConcurrentRecord) {
  LatencyHistogram hist;
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>(t * 100 + i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));

  LatencyHistogram::Snapshot merged;
  merged.Merge(snap);
  merged.Merge(snap);
  EXPECT_EQ(merged.count, 2 * snap.count);
  EXPECT_EQ(merged.P95(), snap.P95());
}

// ---- Protocol -------------------------------------------------------------

TEST(ProtocolTest, ParseRequests) {
  auto query = ParseRequest("QUERY SELECT ?x WHERE { ?x ?p ?o }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, Verb::kQuery);
  EXPECT_EQ(query->arg, "SELECT ?x WHERE { ?x ?p ?o }");

  auto update = ParseRequest("  UPDATE 2 0.05  ");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->verb, Verb::kUpdate);
  EXPECT_EQ(update->arg, "2 0.05");

  auto stats = ParseRequest("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, Verb::kStats);
  EXPECT_TRUE(stats->arg.empty());

  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("  ").ok());
  EXPECT_FALSE(ParseRequest("FETCH x").ok());
  EXPECT_FALSE(ParseRequest("query lowercase").ok());
}

TEST(ProtocolTest, NormalizeQueryText) {
  EXPECT_EQ(NormalizeQueryText("  SELECT   ?x\nWHERE\t{ ?x ?p ?o }  "),
            "SELECT ?x WHERE { ?x ?p ?o }");
  EXPECT_EQ(NormalizeQueryText("a b"), NormalizeQueryText("a\n\n   b"));
  EXPECT_NE(NormalizeQueryText("a b"), NormalizeQueryText("a c"));
}

TEST(ProtocolTest, NormalizePreservesStringLiterals) {
  // Whitespace inside literals is significant: FILTER(?x = "a b") and
  // FILTER(?x = "a  b") are different queries and must not share a key.
  EXPECT_NE(NormalizeQueryText("FILTER(?x = \"a b\")"),
            NormalizeQueryText("FILTER(?x = \"a  b\")"));
  EXPECT_NE(NormalizeQueryText("FILTER(?x = 'a\tb')"),
            NormalizeQueryText("FILTER(?x = 'a b')"));
  // ...while whitespace around literals still collapses.
  EXPECT_EQ(NormalizeQueryText("FILTER( ?x  =  \"a  b\" )"),
            "FILTER( ?x = \"a  b\" )");
  // Escaped quotes do not terminate the literal early.
  EXPECT_EQ(NormalizeQueryText("\"a\\\"  b\"   c"), "\"a\\\"  b\" c");
  // An unterminated literal copies the tail verbatim instead of crashing.
  EXPECT_EQ(NormalizeQueryText("x  \"unterminated   "), "x \"unterminated   ");
}

TEST(ProtocolTest, CacheKeySeparatesEpochAndFlags) {
  std::string q = "SELECT ?x WHERE { ?x ?p ?o }";
  EXPECT_NE(ResultCache::MakeKey(q, 1, true), ResultCache::MakeKey(q, 2, true));
  EXPECT_NE(ResultCache::MakeKey(q, 1, true), ResultCache::MakeKey(q, 1, false));
  EXPECT_EQ(ResultCache::MakeKey(q, 3, true), ResultCache::MakeKey(q, 3, true));
}

// ---- ResultCache ----------------------------------------------------------

TEST(ResultCacheTest, HitMissAndLruEviction) {
  ResultCacheOptions options;
  options.shards = 1;  // single shard: deterministic LRU order
  options.capacity_bytes = 100;
  ResultCache cache(options);

  std::string payload;
  EXPECT_FALSE(cache.Lookup("a", &payload));
  cache.Insert("a", 1, std::string(40, 'A'));
  cache.Insert("b", 1, std::string(40, 'B'));
  EXPECT_TRUE(cache.Lookup("a", &payload));
  EXPECT_EQ(payload, std::string(40, 'A'));

  // 40+40+40 > 100: evicts the least-recently-used entry, which is "b"
  // ("a" was just touched).
  cache.Insert("c", 1, std::string(40, 'C'));
  EXPECT_TRUE(cache.Lookup("a", &payload));
  EXPECT_TRUE(cache.Lookup("c", &payload));
  EXPECT_FALSE(cache.Lookup("b", &payload));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);

  // Oversized payloads are refused outright, not cached-then-evicted.
  cache.Insert("huge", 1, std::string(200, 'H'));
  EXPECT_FALSE(cache.Lookup("huge", &payload));
}

TEST(ResultCacheTest, CostAwareAdmission) {
  ResultCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 1 << 20;
  options.min_cost_micros = 100.0;
  ResultCache cache(options);
  std::string payload;

  // Cheap answers are refused outright — recomputing a point lookup is
  // cheaper than letting it evict an expensive analytical result...
  cache.Insert("cheap", 1, "point-lookup", /*cost_micros=*/5.0);
  EXPECT_FALSE(cache.Lookup("cheap", &payload));
  // ...while expensive and unknown-cost answers are admitted.
  cache.Insert("expensive", 1, "analytical", /*cost_micros=*/250.0);
  EXPECT_TRUE(cache.Lookup("expensive", &payload));
  cache.Insert("unknown", 1, "no-cost-given");
  EXPECT_TRUE(cache.Lookup("unknown", &payload));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // The default floor of 0 admits everything (historical behavior).
  ResultCache open_cache(ResultCacheOptions{});
  open_cache.Insert("tiny", 1, "x", /*cost_micros=*/0.0);
  EXPECT_TRUE(open_cache.Lookup("tiny", &payload));
  EXPECT_EQ(open_cache.Stats().admission_rejects, 0u);
}

TEST(ResultCacheTest, EpochInvalidation) {
  ResultCache cache;
  std::string q = "SELECT ?x WHERE { ?x ?p ?o }";
  cache.Insert(ResultCache::MakeKey(q, 1, true), 1, "epoch1-answer");
  cache.Insert(ResultCache::MakeKey(q, 2, true), 2, "epoch2-answer");

  // Keys embed the epoch: a bumped epoch can never hit an old entry.
  std::string payload;
  EXPECT_TRUE(cache.Lookup(ResultCache::MakeKey(q, 1, true), &payload));
  EXPECT_EQ(payload, "epoch1-answer");
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(q, 3, true), &payload));

  // Eager invalidation drops everything below the live epoch.
  cache.EvictObsolete(2);
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(q, 1, true), &payload));
  EXPECT_TRUE(cache.Lookup(ResultCache::MakeKey(q, 2, true), &payload));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, CarryForwardKeepsUntouchedViewAnswers) {
  ResultCache cache;
  std::string q1 = "SELECT ?a WHERE { ?a ?p 1 }";
  std::string q2 = "SELECT ?b WHERE { ?b ?p 2 }";
  std::string q3 = "SELECT ?c WHERE { ?c ?p 3 }";
  const double inf = std::numeric_limits<double>::infinity();
  // Routed answers carry their view label; base answers carry "".
  cache.Insert(ResultCache::MakeKey(q1, 1, true), 1, "view3-answer", inf,
               -1.0, "3");
  cache.Insert(ResultCache::MakeKey(q2, 1, true), 1, "view5-answer", inf,
               -1.0, "5");
  cache.Insert(ResultCache::MakeKey(q3, 1, true), 1, "base-answer", inf,
               -1.0, "");

  // The update touched view 5 but not view 3: only view 3's answer is
  // still provably exact and survives the epoch bump.
  EXPECT_EQ(cache.CarryForward(1, 2, {"3"}), 1u);
  cache.EvictObsolete(2);

  std::string payload;
  EXPECT_TRUE(cache.Lookup(ResultCache::MakeKey(q1, 2, true), &payload));
  EXPECT_EQ(payload, "view3-answer");
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(q1, 1, true), &payload));
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(q2, 2, true), &payload));
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(q3, 2, true), &payload));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.carried_forward, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // A fresher answer at the new epoch wins over a carried one.
  cache.Insert(ResultCache::MakeKey(q1, 2, true), 2, "recomputed", inf, -1.0,
               "3");
  EXPECT_TRUE(cache.Lookup(ResultCache::MakeKey(q1, 2, true), &payload));
  EXPECT_EQ(payload, "recomputed");

  // No qualifying views or a non-advancing epoch carries nothing.
  EXPECT_EQ(cache.CarryForward(2, 3, {}), 0u);
  EXPECT_EQ(cache.CarryForward(2, 2, {"3"}), 0u);
}

TEST(ResultCacheTest, ConcurrentHitMissUnderPool) {
  ResultCache cache;
  ThreadPool pool(4);
  constexpr int kTasks = 16, kOpsPerTask = 500;
  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([&cache, &observed_hits, t] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        std::string key = "key-" + std::to_string(i % 50);
        std::string payload;
        if (cache.Lookup(key, &payload)) {
          // A hit must always return a fully formed payload for its key.
          EXPECT_EQ(payload, "payload-for-" + key);
          observed_hits.fetch_add(1);
        } else {
          cache.Insert(key, 7, "payload-for-" + key);
        }
      }
      (void)t;
    }));
  }
  for (auto& f : futures) f.get();

  auto stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kTasks * kOpsPerTask));
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 50u);
}

// ---- Engine epoch snapshots ----------------------------------------------

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42,
                                        &store);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine_.LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine_.SetFacet(std::move(facet).value()));
    SOFOS_ASSERT_OK(engine_.Profile().status());
    core::TripleCountCostModel model;
    SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, engine_.SelectViews(model, 2));
    SOFOS_ASSERT_OK(engine_.MaterializeSelection(selection).status());
  }

  core::maintenance::GraphDelta MakeDelta(uint64_t seed) {
    workload::UpdateStreamOptions options;
    options.num_batches = 1;
    options.batch_fraction = 0.02;
    options.seed = seed;
    auto stream = workload::GenerateUpdateStream(
        engine_.base_snapshot(), engine_.store()->dictionary(), options);
    EXPECT_TRUE(stream.ok());
    return (*stream)[0];
  }

  core::SofosEngine engine_;
};

TEST_F(SnapshotTest, EpochBumpsOnMutations) {
  uint64_t e0 = engine_.epoch();
  EXPECT_GT(e0, 0u);  // LoadStore/SetFacet/Profile/Materialize all bumped

  SOFOS_ASSERT_OK(engine_.ApplyUpdates(MakeDelta(7)).status());
  EXPECT_GT(engine_.epoch(), e0);

  uint64_t e1 = engine_.epoch();
  SOFOS_ASSERT_OK(engine_.DropMaterializedViews());
  EXPECT_GT(engine_.epoch(), e1);
}

TEST_F(SnapshotTest, PublishIsIdempotentPerEpoch) {
  EXPECT_EQ(engine_.CurrentSnapshot(), nullptr);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap1, engine_.PublishSnapshot());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap2, engine_.PublishSnapshot());
  EXPECT_EQ(snap1.get(), snap2.get());  // same epoch: no rebuild
  EXPECT_EQ(engine_.CurrentSnapshot().get(), snap1.get());

  SOFOS_ASSERT_OK(engine_.ApplyUpdates(MakeDelta(8)).status());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap3, engine_.PublishSnapshot());
  EXPECT_NE(snap3.get(), snap1.get());
  EXPECT_GT(snap3->epoch(), snap1->epoch());
}

TEST_F(SnapshotTest, PublishLatencyIsRecordedPerBuild) {
  EXPECT_EQ(engine_.publish_latency().count, 0u);
  SOFOS_ASSERT_OK(engine_.PublishSnapshot().status());
  EXPECT_EQ(engine_.publish_latency().count, 1u);
  SOFOS_ASSERT_OK(engine_.PublishSnapshot().status());  // epoch no-op
  EXPECT_EQ(engine_.publish_latency().count, 1u);
  SOFOS_ASSERT_OK(engine_.ApplyUpdates(MakeDelta(12)).status());
  SOFOS_ASSERT_OK(engine_.PublishSnapshot().status());
  EXPECT_EQ(engine_.publish_latency().count, 2u);

  // The offline workload report carries the same histogram shape, so the
  // snapshot cost is observable next to query latencies.
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 2;
  options.seed = 3;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto queries, generator.Generate(options));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto report, engine_.RunWorkload(queries, true));
  EXPECT_EQ(report.publish.count, 2u);
  EXPECT_NE(report.Summary().find("publish["), std::string::npos);
}

TEST_F(SnapshotTest, SnapshotAnswersMatchEngineAndSurviveUpdates) {
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 6;
  options.seed = 11;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto queries, generator.Generate(options));

  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap, engine_.PublishSnapshot());
  std::vector<std::string> before;
  for (const auto& q : queries) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto engine_outcome,
                               engine_.AnswerSparql(q.sparql, true));
    SOFOS_ASSERT_OK_AND_ASSIGN(auto snap_outcome, snap->Answer(q.sparql, true));
    EXPECT_EQ(engine_outcome.used_view, snap_outcome.used_view);
    std::string body = server::FormatQueryBody(snap_outcome.result);
    EXPECT_EQ(server::FormatQueryBody(engine_outcome.result), body);
    before.push_back(std::move(body));
  }

  // Mutate the engine: the old snapshot must keep answering exactly as it
  // did pre-update (epoch isolation), byte for byte.
  SOFOS_ASSERT_OK(engine_.ApplyUpdates(MakeDelta(9)).status());
  for (size_t i = 0; i < queries.size(); ++i) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto again, snap->Answer(queries[i].sparql, true));
    EXPECT_EQ(server::FormatQueryBody(again.result), before[i]) << queries[i].sparql;
  }
}

// ---- Loopback server ------------------------------------------------------

class ServerTest : public SnapshotTest {};

TEST_F(ServerTest, SingleSessionBasics) {
  ServerOptions options;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  ASSERT_GT(server.port(), 0);

  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));

  // STATS before any traffic: valid JSON-ish single line.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto stats, client.Roundtrip("STATS"));
  EXPECT_TRUE(stats.ok()) << stats.header;
  ASSERT_EQ(stats.body.size(), 1u);
  EXPECT_NE(stats.body[0].find("\"endpoints\""), std::string::npos);
  EXPECT_NE(stats.body[0].find("\"cache\""), std::string::npos);
  // Snapshot-publication latency and admission accounting are part of the
  // online observability surface.
  EXPECT_NE(stats.body[0].find("\"publish\""), std::string::npos);
  EXPECT_NE(stats.body[0].find("\"cache_admission_rejects\""),
            std::string::npos);

  // QUERY twice: second one is a cache hit with the identical body.
  std::string sparql = engine_.facet().CanonicalQuerySparql(1);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto first, client.Roundtrip("QUERY " + sparql));
  ASSERT_TRUE(first.ok()) << first.header;
  EXPECT_NE(first.header.find("cached=0"), std::string::npos);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto second, client.Roundtrip("QUERY " + sparql));
  ASSERT_TRUE(second.ok()) << second.header;
  EXPECT_NE(second.header.find("cached=1"), std::string::npos);
  EXPECT_EQ(first.BodyText(), second.BodyText());
  EXPECT_EQ(server.metrics().cache_hits(), 1u);

  // EXPLAIN defaults to the root view query.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto explain, client.Roundtrip("EXPLAIN"));
  EXPECT_TRUE(explain.ok()) << explain.header;
  EXPECT_FALSE(explain.body.empty());

  // Unknown verbs produce ERR without killing the session.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto bad, client.Roundtrip("NOPE"));
  EXPECT_FALSE(bad.ok());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto parse_err, client.Roundtrip("QUERY not sparql"));
  EXPECT_FALSE(parse_err.ok());

  SOFOS_ASSERT_OK_AND_ASSIGN(auto bye, client.Roundtrip("QUIT"));
  EXPECT_TRUE(bye.ok());
  server.Stop();
}

TEST_F(ServerTest, UpdateBumpsEpochAndInvalidatesCache) {
  ServerOptions options;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));

  std::string request = "QUERY " + engine_.facet().CanonicalQuerySparql(0);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto before, client.Roundtrip(request));
  ASSERT_TRUE(before.ok()) << before.header;

  SOFOS_ASSERT_OK_AND_ASSIGN(auto update, client.Roundtrip("UPDATE 1 0.05"));
  ASSERT_TRUE(update.ok()) << update.header;
  EXPECT_EQ(server.update_batches_applied(), 1u);

  // The cached epoch died with the update; the re-query is a fresh miss
  // on the new epoch.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto after, client.Roundtrip(request));
  ASSERT_TRUE(after.ok()) << after.header;
  EXPECT_NE(after.header.find("cached=0"), std::string::npos);
  EXPECT_EQ(server.CacheStats().invalidations, 1u);

  // Bad argument ranges and malformed arguments are command errors, not
  // session killers — and crucially not silent fall-backs to defaults
  // (a typo must never mutate the graph).
  SOFOS_ASSERT_OK_AND_ASSIGN(auto bad, client.Roundtrip("UPDATE 0 9"));
  EXPECT_FALSE(bad.ok());
  for (const char* malformed :
       {"UPDATE abc", "UPDATE 2x", "UPDATE 1 0.5oops", "UPDATE 1 0.5 extra"}) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto response, client.Roundtrip(malformed));
    EXPECT_FALSE(response.ok()) << malformed << " -> " << response.header;
  }
  EXPECT_EQ(server.update_batches_applied(), 1u);  // none of those applied
  server.Stop();
}

TEST_F(ServerTest, SaturationRejectsWithRetryHint) {
  ServerOptions options;
  // Thread-per-session semantics: admission happens per *connection* at
  // accept time. Event-loop mode admits per request (see
  // event_loop_test.cc), so a second idle connection is not rejected.
  options.io_mode = server::IoMode::kThreadPerSession;
  options.max_sessions = 1;
  options.queue_capacity = 0;
  options.busy_retry_ms = 77;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  BlockingClient first;
  SOFOS_ASSERT_OK(first.Connect(server.port()));
  // Roundtrip proves the session is admitted and being served.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto stats, first.Roundtrip("STATS"));
  ASSERT_TRUE(stats.ok());

  BlockingClient second;
  SOFOS_ASSERT_OK(second.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto busy, second.Roundtrip("STATS"));
  EXPECT_TRUE(busy.busy()) << busy.header;
  // The hint is load-derived but floored at busy_retry_ms; with the one
  // admitted session idle it is exactly the floor, though a slow run
  // (TSan) may push the queue-model estimate above it.
  size_t hint_at = busy.header.find("retry_ms=");
  ASSERT_NE(hint_at, std::string::npos) << busy.header;
  EXPECT_GE(std::atoi(busy.header.c_str() + hint_at + 9), 77) << busy.header;
  EXPECT_GE(server.metrics().rejected(), 1u);

  // Once the first session leaves, capacity frees up.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto bye, first.Roundtrip("QUIT"));
  ASSERT_TRUE(bye.ok());
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    BlockingClient third;
    SOFOS_ASSERT_OK(third.Connect(server.port()));
    auto response = third.Roundtrip("STATS");
    served = response.ok() && response->ok();
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(served);
  server.Stop();
}

/// The acceptance-criteria scenario: >= 4 concurrent sessions issuing
/// interleaved QUERY and UPDATE traffic; every QUERY response must be
/// byte-identical to a direct EngineSnapshot::Answer on the epoch the
/// response reports.
TEST_F(ServerTest, ConcurrentMixedTrafficMatchesSnapshotsByteExactly) {
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions wopts;
  wopts.num_queries = 8;
  wopts.seed = 23;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto queries, generator.Generate(wopts));

  ServerOptions options;
  options.max_sessions = 6;
  options.retain_snapshots = true;  // keep every epoch for the re-check
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  struct Observation {
    std::string sparql;
    uint64_t epoch = 0;
    std::string body;
  };
  constexpr int kQueryThreads = 4, kRequestsPerThread = 24;
  std::vector<std::vector<Observation>> observations(kQueryThreads + 1);
  std::vector<std::string> failures(kQueryThreads);

  // One observed query from the main thread, synchronously before any
  // update and again after all of them, pins both the first and the last
  // epoch — the concurrent interleave below then only has to fill the
  // middle.
  auto observe_now = [&](const std::string& sparql) {
    BlockingClient probe;
    SOFOS_ASSERT_OK(probe.Connect(server.port()));
    SOFOS_ASSERT_OK_AND_ASSIGN(auto response,
                               probe.Roundtrip("QUERY " + sparql));
    ASSERT_TRUE(response.ok()) << response.header;
    size_t pos = response.header.find("epoch=");
    ASSERT_NE(pos, std::string::npos);
    Observation obs;
    obs.sparql = sparql;
    obs.epoch = std::strtoull(response.header.c_str() + pos + 6, nullptr, 10);
    obs.body = response.BodyText();
    observations[kQueryThreads].push_back(std::move(obs));
    probe.Roundtrip("QUIT");
  };
  observe_now(queries[0].sparql);

  std::vector<std::thread> clients;
  for (int t = 0; t < kQueryThreads; ++t) {
    clients.emplace_back([&, t] {
      BlockingClient client;
      Status status = client.Connect(server.port());
      if (!status.ok()) {
        failures[t] = status.ToString();
        return;
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& sparql = queries[(t + i) % queries.size()].sparql;
        auto response = client.Roundtrip("QUERY " + sparql);
        if (!response.ok()) {
          failures[t] = response.status().ToString();
          return;
        }
        if (!response->ok()) {
          failures[t] = response->header;
          return;
        }
        // Header: OK QUERY rows=.. cols=.. epoch=<e> cached=..
        size_t pos = response->header.find("epoch=");
        if (pos == std::string::npos) {
          failures[t] = "no epoch in: " + response->header;
          return;
        }
        Observation obs;
        obs.sparql = sparql;
        obs.epoch = std::strtoull(response->header.c_str() + pos + 6, nullptr, 10);
        obs.body = response->BodyText();
        observations[t].push_back(std::move(obs));
      }
      client.Roundtrip("QUIT");
    });
  }
  // One updater interleaves epoch bumps with the query traffic.
  std::string update_failure;
  std::thread updater([&] {
    BlockingClient client;
    Status status = client.Connect(server.port());
    if (!status.ok()) {
      update_failure = status.ToString();
      return;
    }
    for (int i = 0; i < 5; ++i) {
      auto response = client.Roundtrip("UPDATE 1 0.02");
      if (!response.ok() || !response->ok()) {
        update_failure = response.ok() ? response->header
                                       : response.status().ToString();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    client.Roundtrip("QUIT");
  });

  for (auto& t : clients) t.join();
  updater.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
  EXPECT_EQ(update_failure, "");
  EXPECT_EQ(server.update_batches_applied(), 5u);
  observe_now(queries[0].sparql);  // pins the final epoch
  server.Stop();

  // Re-answer every observed (query, epoch) pair directly on the retained
  // snapshot of that epoch: the served bytes must match exactly.
  size_t total = 0;
  std::set<uint64_t> epochs_seen;
  for (const auto& per_thread : observations) {
    for (const Observation& obs : per_thread) {
      auto snapshot = server.SnapshotForEpoch(obs.epoch);
      ASSERT_NE(snapshot, nullptr) << "epoch " << obs.epoch << " not retained";
      auto direct = snapshot->Answer(obs.sparql, /*allow_views=*/true);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_EQ(obs.body, server::FormatQueryBody(direct->result))
          << "epoch " << obs.epoch << " query " << obs.sparql;
      epochs_seen.insert(obs.epoch);
      ++total;
    }
  }
  EXPECT_EQ(total,
            static_cast<size_t>(kQueryThreads) * kRequestsPerThread + 2);
  // The interleave actually spanned epochs (queries before and after
  // updates), otherwise this test proves nothing about isolation.
  EXPECT_GT(epochs_seen.size(), 1u);

  // Metrics sanity: all requests metered, cache saw traffic.
  const auto& qm = server.metrics().ForEndpoint(server::Endpoint::kQuery);
  EXPECT_EQ(qm.requests.load(),
            static_cast<uint64_t>(kQueryThreads) * kRequestsPerThread + 2);
  EXPECT_GT(server.metrics().cache_hits() + server.metrics().cache_misses(),
            0u);
}

}  // namespace
}  // namespace sofos
