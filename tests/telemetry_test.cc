/// Continuous-telemetry tests: the TelemetryHistory ring (wraparound,
/// counter rates and histogram interval percentiles under an injectable
/// clock), LatencyHistogram::Snapshot::Subtract, Prometheus label-value
/// escaping with hostile labels, the thread pool's bridged queue/task
/// instrumentation, the workload recorder (eviction, export, and the
/// replay invariant: re-running the exported workload reproduces the
/// recorded routing decisions), the server's HISTORY/SLOW verbs,
/// slow-query capture rate limiting, the HTTP observability endpoint
/// (/metrics /stats /history /slow /healthz, including the saturation
/// flip to 503), and a concurrent sampler-vs-traffic stress that runs
/// under the TSan lane (scripts/run_tsan.sh, label `telemetry`).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/facet.h"
#include "core/workload_recorder.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "server/slow_query_log.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using server::BlockingClient;
using server::ServerOptions;
using server::SlowQueryLog;
using server::SlowQueryOptions;
using server::SofosServer;

// ---- TelemetryHistory: ring, rates, intervals under a fake clock ----------

TEST(TelemetryHistoryTest, WindowNeedsTwoSamples) {
  MetricsRegistry registry;
  registry.Counter("sofos_x_total")->Add(5);
  double now = 100.0;
  TelemetryOptions options;
  options.clock_seconds = [&now] { return now; };
  TelemetryHistory history(&registry, options);

  EXPECT_FALSE(history.Window(60.0).valid);
  history.Sample();
  EXPECT_FALSE(history.Window(60.0).valid);
  now = 101.0;
  history.Sample();
  EXPECT_TRUE(history.Window(60.0).valid);
  // A window too narrow to reach back to the older sample is invalid too.
  EXPECT_FALSE(history.Window(0.5).valid);
}

TEST(TelemetryHistoryTest, CounterRatesAndRingWraparound) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("sofos_req_total");
  registry.Gauge("sofos_depth")->Set(2.0);
  double now = 100.0;
  TelemetryOptions options;
  options.capacity = 4;
  options.clock_seconds = [&now] { return now; };
  TelemetryHistory history(&registry, options);

  history.Sample();  // t=100, counter=0
  counter->Add(10);
  now = 110.0;
  history.Sample();  // t=110, counter=10
  counter->Add(30);
  now = 120.0;
  history.Sample();  // t=120, counter=40

  TelemetryWindow wide = history.Window(60.0);
  ASSERT_TRUE(wide.valid);
  EXPECT_EQ(wide.samples_in_window, 3u);
  EXPECT_DOUBLE_EQ(wide.window_seconds, 20.0);
  EXPECT_DOUBLE_EQ(wide.newest_at_seconds, 120.0);
  ASSERT_TRUE(wide.rates.count("sofos_req_total"));
  EXPECT_EQ(wide.rates.at("sofos_req_total").delta, 40u);
  EXPECT_DOUBLE_EQ(wide.rates.at("sofos_req_total").per_second, 2.0);
  ASSERT_TRUE(wide.gauges.count("sofos_depth"));
  EXPECT_DOUBLE_EQ(wide.gauges.at("sofos_depth"), 2.0);

  // A narrower window baselines against the closer sample.
  TelemetryWindow narrow = history.Window(10.0);
  ASSERT_TRUE(narrow.valid);
  EXPECT_EQ(narrow.rates.at("sofos_req_total").delta, 30u);
  EXPECT_DOUBLE_EQ(narrow.rates.at("sofos_req_total").per_second, 3.0);

  // Wraparound: capacity 4 keeps only the newest four samples; a window
  // reaching past the evicted ones baselines at the oldest *retained*.
  for (int i = 0; i < 6; ++i) {
    counter->Add(1);
    now += 10.0;
    history.Sample();
  }
  EXPECT_EQ(history.size(), 4u);
  TelemetryWindow all = history.Window(1e6);
  ASSERT_TRUE(all.valid);
  EXPECT_EQ(all.samples_in_window, 4u);
  EXPECT_EQ(all.rates.at("sofos_req_total").delta, 3u);  // 3 retained steps
  EXPECT_DOUBLE_EQ(all.window_seconds, 30.0);
}

TEST(TelemetryHistoryTest, CounterBornMidWindowBaselinesAtZero) {
  MetricsRegistry registry;
  double now = 100.0;
  TelemetryOptions options;
  options.clock_seconds = [&now] { return now; };
  TelemetryHistory history(&registry, options);

  history.Sample();
  registry.Counter("sofos_late_total")->Add(7);  // born after first sample
  now = 110.0;
  history.Sample();

  TelemetryWindow window = history.Window(60.0);
  ASSERT_TRUE(window.valid);
  ASSERT_TRUE(window.rates.count("sofos_late_total"));
  EXPECT_EQ(window.rates.at("sofos_late_total").delta, 7u);
  EXPECT_DOUBLE_EQ(window.rates.at("sofos_late_total").per_second, 0.7);
}

TEST(TelemetryHistoryTest, BackwardsCounterClampsToZeroDelta) {
  // A collector-exported counter that resets (process restart semantics)
  // must not wrap the unsigned delta into garbage rates.
  MetricsRegistry registry;
  uint64_t external = 100;
  uint64_t collector_id =
      registry.RegisterCollector([&external](std::vector<MetricSample>* out) {
        MetricSample s;
        s.name = "sofos_external_total";
        s.kind = MetricSample::Kind::kCounter;
        s.counter_value = external;
        out->push_back(std::move(s));
      });
  double now = 100.0;
  TelemetryOptions options;
  options.clock_seconds = [&now] { return now; };
  TelemetryHistory history(&registry, options);

  history.Sample();
  external = 40;  // went backwards
  now = 110.0;
  history.Sample();

  TelemetryWindow window = history.Window(60.0);
  ASSERT_TRUE(window.valid);
  EXPECT_EQ(window.rates.at("sofos_external_total").delta, 0u);
  EXPECT_DOUBLE_EQ(window.rates.at("sofos_external_total").per_second, 0.0);
  registry.UnregisterCollector(collector_id);
}

TEST(TelemetryHistoryTest, HistogramIntervalPercentilesNotLifetime) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.Histogram("sofos_exec_micros");
  double now = 100.0;
  TelemetryOptions options;
  options.clock_seconds = [&now] { return now; };
  TelemetryHistory history(&registry, options);

  // 200 fast samples before the window, 100 slow ones inside it: the
  // interval distribution must show only the slow ones, while the
  // lifetime snapshot would be dominated by the fast majority.
  for (int i = 0; i < 200; ++i) hist->Record(10.0);
  history.Sample();
  for (int i = 0; i < 100; ++i) hist->Record(5000.0);
  now = 110.0;
  history.Sample();

  TelemetryWindow window = history.Window(60.0);
  ASSERT_TRUE(window.valid);
  ASSERT_TRUE(window.intervals.count("sofos_exec_micros"));
  const LatencyHistogram::Snapshot& delta =
      window.intervals.at("sofos_exec_micros");
  EXPECT_EQ(delta.count, 100u);
  // Upper-bound estimate stays within one geometric bucket (ratio 1.5).
  EXPECT_GE(delta.P50(), 5000.0);
  EXPECT_LE(delta.P50(), 5000.0 * 1.5);
  EXPECT_GE(delta.P99(), 5000.0);

  std::string json = history.WindowJson(60.0);
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"sofos_exec_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(SnapshotSubtractTest, SaturatesAndRecomputesCount) {
  LatencyHistogram hist;
  for (int i = 0; i < 50; ++i) hist.Record(100.0);
  LatencyHistogram::Snapshot older = hist.TakeSnapshot();
  for (int i = 0; i < 30; ++i) hist.Record(100.0);
  LatencyHistogram::Snapshot newer = hist.TakeSnapshot();

  LatencyHistogram::Snapshot delta = newer.Subtract(older);
  EXPECT_EQ(delta.count, 30u);
  EXPECT_NEAR(delta.sum_micros, 30 * 100.0, 1.0);
  EXPECT_GE(delta.P50(), 100.0);
  EXPECT_LE(delta.P50(), 150.0);

  // Subtracting a *newer* snapshot saturates to empty instead of
  // underflowing the unsigned buckets.
  LatencyHistogram::Snapshot inverted = older.Subtract(newer);
  EXPECT_EQ(inverted.count, 0u);
  EXPECT_GE(inverted.sum_micros, 0.0);
}

// ---- Prometheus exposition: hostile label values ---------------------------

TEST(PrometheusEscapingTest, HostileLabelValuesAreEscaped) {
  MetricsRegistry registry;
  // Raw label values contain a quote, a backslash, and a newline — the
  // three characters the exposition format requires escaping. The
  // registry's identity is the raw name; only rendering escapes.
  registry.Counter("sofos_rows_total{view=\"a\"b\\c\"}")->Add(3);
  registry.Counter("sofos_rows_total{view=\"x\ny\"}")->Add(4);
  std::string text = registry.PrometheusText();

  EXPECT_NE(text.find("sofos_rows_total{view=\"a\\\"b\\\\c\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sofos_rows_total{view=\"x\\ny\"} 4"), std::string::npos)
      << text;
  // The raw (unescaped) forms must not leak into the exposition: a bare
  // newline inside a label value breaks the line-oriented format.
  EXPECT_EQ(text.find("view=\"x\ny\""), std::string::npos);
  EXPECT_EQ(text.find("view=\"a\"b"), std::string::npos);
}

// ---- NormalizeSparql (shared cache-key / recorder form) --------------------

TEST(NormalizeSparqlTest, CollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(NormalizeSparql("  SELECT   ?x\n WHERE\t{ ?x ?p ?o }  "),
            "SELECT ?x WHERE { ?x ?p ?o }");
  // Quoted literals keep their spacing verbatim.
  EXPECT_EQ(NormalizeSparql("FILTER(?n =  \"a  b\")"),
            "FILTER(?n = \"a  b\")");
}

// ---- Thread pool instrumentation ------------------------------------------

TEST(ThreadPoolTelemetryTest, BridgedQueueAndTaskMetrics) {
  ThreadPool pool(2);
  MetricsRegistry registry;
  uint64_t collector_id = pool.BridgeMetrics(&registry);

  constexpr uint64_t kTasks = 8;
  std::vector<std::future<void>> futures;
  for (uint64_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }));
  }
  for (auto& f : futures) f.get();
  // A task's future resolves inside its closure, *before* the worker
  // stamps the run-time histogram — poll briefly for the last record.
  for (int i = 0; i < 1000 && pool.TaskRunSnapshot().count < kTasks; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.QueueWaitSnapshot().count, kTasks);
  EXPECT_EQ(pool.TaskRunSnapshot().count, kTasks);
  // Every task slept ~1ms; the run-time distribution must reflect it.
  EXPECT_GE(pool.TaskRunSnapshot().P50(), 1000.0);

  bool saw_wait = false, saw_run = false, saw_depth = false;
  for (const MetricSample& s : registry.Collect()) {
    if (s.name == "sofos_pool_queue_wait_micros") {
      saw_wait = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
      EXPECT_EQ(s.histogram.count, kTasks);
    } else if (s.name == "sofos_pool_task_micros") {
      saw_run = true;
      EXPECT_EQ(s.histogram.count, kTasks);
    } else if (s.name == "sofos_pool_queue_depth") {
      saw_depth = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kGauge);
    }
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_depth);
  registry.UnregisterCollector(collector_id);
}

// ---- WorkloadRecorder unit behavior ---------------------------------------

TEST(WorkloadRecorderTest, EvictionCountersAndDisable) {
  core::WorkloadRecorder recorder(2);
  core::RecordedQuery q;
  q.normalized_sparql = "q";
  q.has_signature = true;
  recorder.Record(q);
  recorder.Record(q);
  recorder.Record(q);  // evicts the oldest
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.recorded_total(), 3u);
  EXPECT_EQ(recorder.dropped_total(), 1u);

  recorder.Enable(false);
  recorder.Record(q);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.recorded_total(), 3u);

  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(WorkloadRecorderTest, ExportSkipsSignaturelessEntries) {
  core::WorkloadRecorder recorder(8);
  core::RecordedQuery with;
  with.normalized_sparql = "SELECT ?x WHERE { ?x ?p ?o }";
  with.has_signature = true;
  with.signature.group_mask = 3;
  core::RecordedQuery without;  // e.g. a server cache hit
  without.normalized_sparql = "SELECT ?x WHERE { ?x ?p ?o }";
  without.cache_hit = true;
  recorder.Record(with);
  recorder.Record(without);
  recorder.Record(with);

  std::vector<core::WorkloadQuery> exported = recorder.ExportWorkload();
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported[0].id, "rec-0");
  EXPECT_EQ(exported[1].id, "rec-2");
  EXPECT_EQ(exported[0].signature.group_mask, 3u);
  EXPECT_EQ(exported[0].sparql, with.normalized_sparql);
}

// ---- Engine fixture (mirrors server_test.cc's SnapshotTest) ---------------

class TelemetryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    auto spec =
        datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42, &store);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine_.LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine_.SetFacet(std::move(facet).value()));
    SOFOS_ASSERT_OK(engine_.Profile().status());
    core::TripleCountCostModel model;
    SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, engine_.SelectViews(model, 2));
    SOFOS_ASSERT_OK(engine_.MaterializeSelection(selection).status());
  }

  core::SofosEngine engine_;
};

TEST_F(TelemetryEngineTest, RecorderExportReplayReproducesRouting) {
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap, engine_.PublishSnapshot());

  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 6;
  options.seed = 11;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto queries, generator.Generate(options));

  engine_.recorder()->Clear();
  for (const auto& q : queries) {
    SOFOS_ASSERT_OK(snap->Answer(q.sparql, true).status());
  }

  std::vector<core::RecordedQuery> recorded = engine_.recorder()->Snapshot();
  ASSERT_EQ(recorded.size(), queries.size());
  for (const auto& r : recorded) {
    EXPECT_TRUE(r.has_signature) << r.normalized_sparql;
    EXPECT_EQ(r.epoch, snap->epoch());
    EXPECT_FALSE(r.cache_hit);
  }

  // The acceptance invariant: replaying the exported workload through the
  // engine at the same epoch reproduces every recorded routing decision.
  std::vector<core::WorkloadQuery> exported =
      engine_.recorder()->ExportWorkload();
  ASSERT_EQ(exported.size(), recorded.size());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto report, engine_.RunWorkload(exported, true));
  ASSERT_EQ(report.outcomes.size(), recorded.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(report.outcomes[i].used_view, recorded[i].used_view)
        << exported[i].sparql;
    if (recorded[i].used_view) {
      EXPECT_EQ(report.outcomes[i].view_mask, recorded[i].view_mask)
          << exported[i].sparql;
    }
    EXPECT_EQ(report.outcomes[i].result_rows, recorded[i].result_rows);
  }
}

// ---- SlowQueryLog unit behavior -------------------------------------------

TEST(SlowQueryLogTest, ThresholdAndRateLimit) {
  double now = 0.0;
  SlowQueryOptions options;
  options.threshold_micros = 1000.0;
  options.min_interval_seconds = 10.0;
  options.capacity = 2;
  options.clock_seconds = [&now] { return now; };
  SlowQueryLog log(options);

  EXPECT_FALSE(log.ShouldCapture(500.0));  // below threshold
  EXPECT_TRUE(log.ShouldCapture(2000.0));  // first capture admits
  EXPECT_FALSE(log.ShouldCapture(2000.0));  // rate-limited
  EXPECT_EQ(log.suppressed_total(), 1u);
  now = 11.0;
  EXPECT_TRUE(log.ShouldCapture(2000.0));  // interval elapsed

  server::SlowQueryRecord record;
  record.query = "q";
  record.micros = 2000.0;
  log.Add(record);
  log.Add(record);
  log.Add(record);  // capacity 2: oldest evicted
  EXPECT_EQ(log.size(), 2u);
  EXPECT_NE(log.ToJson().find("\"micros\":2000.0"), std::string::npos);

  // threshold_micros <= 0 disables capture entirely.
  SlowQueryOptions off;
  off.threshold_micros = 0.0;
  SlowQueryLog disabled(off);
  EXPECT_FALSE(disabled.ShouldCapture(1e9));
}

// ---- Loopback server: HISTORY/SLOW verbs, HTTP endpoint -------------------

class TelemetryServerTest : public TelemetryEngineTest {};

/// One-shot HTTP/1.0 GET against the observability listener; returns the
/// full response (status line + headers + body) read to EOF.
std::string HttpGet(uint16_t port, const std::string& target,
                    const std::string& method = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      method + " " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(TelemetryServerTest, HistoryVerbReportsWindowRates) {
  ServerOptions options;
  // No background interference: the test drives sampling by hand.
  options.sample_period_seconds = 3600.0;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));

  server.SampleTelemetryNow();
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto answer,
      client.Roundtrip("QUERY " + engine_.facet().CanonicalQuerySparql(1)));
  ASSERT_TRUE(answer.ok()) << answer.header;
  server.SampleTelemetryNow();

  SOFOS_ASSERT_OK_AND_ASSIGN(auto history, client.Roundtrip("HISTORY 60"));
  ASSERT_TRUE(history.ok()) << history.header;
  EXPECT_NE(history.header.find("OK HISTORY window=60.0"), std::string::npos);
  ASSERT_EQ(history.body.size(), 1u);
  EXPECT_NE(history.body[0].find("\"valid\":true"), std::string::npos);
  EXPECT_NE(history.body[0].find("sofos_engine_queries_total"), std::string::npos);
  EXPECT_NE(history.body[0].find("\"rates\""), std::string::npos);

  SOFOS_ASSERT_OK_AND_ASSIGN(auto bad, client.Roundtrip("HISTORY nope"));
  EXPECT_FALSE(bad.ok());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto negative, client.Roundtrip("HISTORY -5"));
  EXPECT_FALSE(negative.ok());

  client.Roundtrip("QUIT");
  server.Stop();
  // History stays readable after Stop() (post-mortem inspection).
  EXPECT_NE(server.HistoryJson(60.0).find("\"valid\":true"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, SlowQueryCaptureIsRateLimited) {
  ServerOptions options;
  options.slow_query.threshold_micros = 0.001;  // everything is "slow"
  options.slow_query.min_interval_seconds = 3600.0;  // admit exactly one
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));

  // Three distinct queries (cache misses, so each one crosses the capture
  // path); the rate limit admits only the first.
  for (uint32_t mask = 1; mask <= 3; ++mask) {
    SOFOS_ASSERT_OK_AND_ASSIGN(
        auto response,
        client.Roundtrip("QUERY " +
                         engine_.facet().CanonicalQuerySparql(mask)));
    ASSERT_TRUE(response.ok()) << response.header;
  }
  EXPECT_EQ(server.slow_queries().captured_total(), 1u);
  EXPECT_GE(server.slow_queries().suppressed_total(), 2u);

  SOFOS_ASSERT_OK_AND_ASSIGN(auto slow, client.Roundtrip("SLOW"));
  ASSERT_TRUE(slow.ok()) << slow.header;
  EXPECT_NE(slow.header.find("OK SLOW captured=1"), std::string::npos);
  std::string body = slow.BodyText();
  EXPECT_NE(body.find("\"analyze\""), std::string::npos);
  EXPECT_NE(body.find("\"trace\""), std::string::npos);
  EXPECT_NE(body.find("\"epoch\""), std::string::npos);

  client.Roundtrip("QUIT");
  server.Stop();
}

TEST_F(TelemetryServerTest, HttpEndpointsRoundTrip) {
  ServerOptions options;
  options.sample_period_seconds = 3600.0;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  ASSERT_GT(server.http_port(), 0);

  // Two manual samples bracket one query so /history has a valid window.
  server.SampleTelemetryNow();
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto answer,
      client.Roundtrip("QUERY " + engine_.facet().CanonicalQuerySparql(2)));
  ASSERT_TRUE(answer.ok()) << answer.header;
  server.SampleTelemetryNow();

  std::string metrics = HttpGet(server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("sofos_engine_queries_total"), std::string::npos);

  std::string stats = HttpGet(server.http_port(), "/stats");
  EXPECT_NE(stats.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(stats.find("\"endpoints\""), std::string::npos);

  std::string history = HttpGet(server.http_port(), "/history?window=60");
  EXPECT_NE(history.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(history.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(HttpGet(server.http_port(), "/history?window=junk")
                .find("HTTP/1.0 400"),
            std::string::npos);

  std::string slow = HttpGet(server.http_port(), "/slow");
  EXPECT_NE(slow.find("HTTP/1.0 200"), std::string::npos);

  std::string health = HttpGet(server.http_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

  EXPECT_NE(HttpGet(server.http_port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.http_port(), "/metrics", "POST")
                .find("HTTP/1.0 405"),
            std::string::npos);

  client.Roundtrip("QUIT");
  server.Stop();
}

TEST_F(TelemetryServerTest, HealthzFlipsTo503UnderSaturation) {
  ServerOptions options;
  // Thread-per-session semantics: one admitted *connection* fills the
  // capacity. Event-loop mode decouples connections from concurrency
  // (idle connections are free), so its /healthz flip is covered by the
  // open-loop saturation test in event_loop_test.cc instead.
  options.io_mode = server::IoMode::kThreadPerSession;
  options.max_sessions = 1;
  options.queue_capacity = 0;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  // One admitted session fills the whole capacity: a new connection would
  // be rejected, so /healthz must report overloaded — and it must do so
  // *while* the only session worker is occupied, which is exactly why the
  // HTTP listener serves off its own thread.
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto stats, client.Roundtrip("STATS"));
  ASSERT_TRUE(stats.ok());

  std::string health;
  for (int i = 0; i < 100; ++i) {  // admission is recorded on accept
    health = HttpGet(server.http_port(), "/healthz");
    if (health.find("HTTP/1.0 503") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(health.find("HTTP/1.0 503"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\":\"overloaded\""), std::string::npos);

  // Session ends -> capacity frees -> healthy again.
  client.Roundtrip("QUIT");
  for (int i = 0; i < 100; ++i) {
    health = HttpGet(server.http_port(), "/healthz");
    if (health.find("HTTP/1.0 200") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;

  server.Stop();
}

TEST_F(TelemetryServerTest, ConcurrentSamplerTrafficAndReaders) {
  // TSan target: background sampler at an aggressive period, concurrent
  // query sessions, an updater bumping epochs, and HTTP/HISTORY readers
  // all racing over the same registry/history/recorder/slow-log.
  ServerOptions options;
  options.sample_period_seconds = 0.005;
  options.slow_query.threshold_micros = 1.0;
  options.slow_query.min_interval_seconds = 0.0;
  options.slow_query.capacity = 4;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  constexpr int kClients = 3, kQueriesPerClient = 12;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient client;
      if (!client.Connect(server.port()).ok()) {
        ++errors;
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        uint32_t mask = static_cast<uint32_t>((c + i) % 4);
        auto response = client.Roundtrip(
            "QUERY " + engine_.facet().CanonicalQuerySparql(mask));
        if (!response.ok() || !response->ok()) ++errors;
      }
      client.Roundtrip("QUIT");
    });
  }
  threads.emplace_back([&] {
    BlockingClient client;
    if (!client.Connect(server.port()).ok()) {
      ++errors;
      return;
    }
    for (int i = 0; i < 2; ++i) {
      auto response = client.Roundtrip("UPDATE 1 0.01");
      if (!response.ok() || !response->ok()) ++errors;
    }
    client.Roundtrip("QUIT");
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      server.HistoryJson(60.0);
      HttpGet(server.http_port(), "/metrics");
      HttpGet(server.http_port(), "/healthz");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);

  // The sampler ran throughout; the ring must hold real samples and the
  // recorder must have seen every non-cached query.
  ASSERT_NE(server.telemetry(), nullptr);
  EXPECT_GT(server.telemetry()->size(), 1u);
  EXPECT_GT(engine_.recorder()->recorded_total(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace sofos
