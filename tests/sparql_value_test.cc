#include "sparql/value.h"

#include "gtest/gtest.h"
#include "sparql/expression.h"
#include "sparql/parser.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

// ----------------------------------------------------------- construction

TEST(ValueTest, FromTermDecodesNativeTypes) {
  EXPECT_EQ(Value::FromTerm(Term::Integer(5)).type(), Value::Type::kInt);
  EXPECT_EQ(Value::FromTerm(Term::Double(2.5)).type(), Value::Type::kDouble);
  EXPECT_EQ(Value::FromTerm(Term::Boolean(true)).type(), Value::Type::kBool);
  EXPECT_EQ(Value::FromTerm(Term::String("x")).type(), Value::Type::kString);
  EXPECT_EQ(Value::FromTerm(Term::Iri("http://x")).type(), Value::Type::kIri);
  EXPECT_EQ(Value::FromTerm(Term::Blank("b")).type(), Value::Type::kBlank);
}

TEST(ValueTest, FromTermKeepsLangTag) {
  Value v = Value::FromTerm(Term::LangString("chat", "fr"));
  EXPECT_EQ(v.type(), Value::Type::kString);
  EXPECT_EQ(v.lang(), "fr");
}

TEST(ValueTest, FromTermOpaqueDatatype) {
  auto term = Term::TypedLiteral("2021-01-01", "http://www.w3.org/2001/XMLSchema#date");
  ASSERT_TRUE(term.ok());
  Value v = Value::FromTerm(*term);
  EXPECT_EQ(v.type(), Value::Type::kOpaque);
}

TEST(ValueTest, ToTermRoundTrips) {
  for (const Term& term :
       {Term::Integer(-3), Term::Double(1.5), Term::Boolean(false),
        Term::String("s"), Term::LangString("s", "de"), Term::Iri("http://i"),
        Term::Blank("b")}) {
    auto back = Value::FromTerm(term).ToTerm();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, term) << term.ToNTriples();
  }
}

TEST(ValueTest, UnboundToTermFails) {
  EXPECT_FALSE(Value::Unbound().ToTerm().ok());
}

// ---------------------------------------------------- effective boolean

TEST(ValueTest, EffectiveBooleanValues) {
  EXPECT_TRUE(Value::Bool(true).EffectiveBool().value());
  EXPECT_FALSE(Value::Bool(false).EffectiveBool().value());
  EXPECT_TRUE(Value::Int(7).EffectiveBool().value());
  EXPECT_FALSE(Value::Int(0).EffectiveBool().value());
  EXPECT_TRUE(Value::MakeDouble(0.1).EffectiveBool().value());
  EXPECT_FALSE(Value::MakeDouble(0.0).EffectiveBool().value());
  EXPECT_TRUE(Value::String("x").EffectiveBool().value());
  EXPECT_FALSE(Value::String("").EffectiveBool().value());
}

TEST(ValueTest, EffectiveBooleanErrorsForIrisAndUnbound) {
  EXPECT_FALSE(Value::Iri("http://x").EffectiveBool().ok());
  EXPECT_FALSE(Value::Blank("b").EffectiveBool().ok());
  EXPECT_FALSE(Value::Unbound().EffectiveBool().ok());
}

// ------------------------------------------------------------ comparison

TEST(ValueTest, NumericComparisonsMixWidths) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(3), false).value(), -1);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(3), false).value(), 0);
  EXPECT_EQ(Value::MakeDouble(2.5).Compare(Value::Int(2), false).value(), 1);
  EXPECT_EQ(Value::Int(2).Compare(Value::MakeDouble(2.0), false).value(), 0);
}

TEST(ValueTest, StringComparisonIncludesLang) {
  EXPECT_EQ(Value::String("a").Compare(Value::String("b"), false).value(), -1);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a"), true).value(), 0);
  EXPECT_NE(Value::String("a", "en").Compare(Value::String("a", "de"), true).value(), 0);
}

TEST(ValueTest, IriEqualityAndOrdering) {
  EXPECT_EQ(Value::Iri("http://a").Compare(Value::Iri("http://a"), true).value(), 0);
  EXPECT_NE(Value::Iri("http://a").Compare(Value::Iri("http://b"), true).value(), 0);
  EXPECT_EQ(Value::Iri("http://a").Compare(Value::Iri("http://b"), false).value(), -1);
}

TEST(ValueTest, CrossTypeEqualityIsNotEqual) {
  // SPARQL: = between incomparable types is simply "not equal" here.
  EXPECT_NE(Value::Int(1).Compare(Value::String("1"), true).value(), 0);
  EXPECT_NE(Value::Iri("http://x").Compare(Value::Int(1), true).value(), 0);
}

TEST(ValueTest, CrossTypeOrderingErrors) {
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("1"), false).ok());
  EXPECT_FALSE(Value::Iri("http://x").Compare(Value::Int(1), false).ok());
  EXPECT_FALSE(Value::Unbound().Compare(Value::Int(1), true).ok());
}

TEST(ValueTest, TotalCompareIsATotalOrder) {
  std::vector<Value> values = {
      Value::Unbound(),          Value::Blank("b"),      Value::Iri("http://a"),
      Value::Bool(false),        Value::Bool(true),      Value::Int(1),
      Value::MakeDouble(2.5),    Value::String("a"),     Value::String("b"),
  };
  // Pairwise antisymmetry and the documented type ranking.
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].TotalCompare(values[i]), 0);
    for (size_t j = i + 1; j < values.size(); ++j) {
      int ij = values[i].TotalCompare(values[j]);
      int ji = values[j].TotalCompare(values[i]);
      EXPECT_EQ(ij, -ji);
      EXPECT_LE(ij, 0) << values[i].ToString() << " vs " << values[j].ToString();
    }
  }
}

TEST(ValueTest, ToStringForDiagnostics) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Iri("http://a").ToString(), "<http://a>");
  EXPECT_EQ(Value::Unbound().ToString(), "UNBOUND");
  EXPECT_EQ(Value::String("x", "en").ToString(), "\"x\"@en");
}

// ------------------------------------------------------- expression eval

class ExprEvalTest : public ::testing::Test {
 protected:
  /// Evaluates a standalone expression with ?x bound to `x` (optional).
  Result<Value> Eval(const std::string& text, std::optional<Term> x = {}) {
    auto expr = Parser::ParseExpression(text);
    if (!expr.ok()) return expr.status();
    VariableTable vars;
    int slot = vars.GetOrAdd("x");
    Row row(1, kNullTermId);
    if (x.has_value()) row[static_cast<size_t>(slot)] = dict_.Intern(*x);
    ExprEvaluator eval(&dict_, &vars);
    return eval.Eval(**expr, row);
  }

  Dictionary dict_;
};

TEST_F(ExprEvalTest, ArithmeticKeepsIntegers) {
  auto v = Eval("2 + 3 * 4");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), Value::Type::kInt);
  EXPECT_EQ(v->int_value(), 14);
}

TEST_F(ExprEvalTest, DivisionAlwaysDouble) {
  auto v = Eval("7 / 2");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), Value::Type::kDouble);
  EXPECT_DOUBLE_EQ(v->double_value(), 3.5);
}

TEST_F(ExprEvalTest, DivisionByZeroErrors) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 / (2 - 2)").ok());
}

TEST_F(ExprEvalTest, UnaryMinusAndNot) {
  EXPECT_EQ(Eval("-(3 + 4)")->int_value(), -7);
  EXPECT_TRUE(Eval("!(1 > 2)")->bool_value());
  EXPECT_FALSE(Eval("-\"str\"").ok());
}

TEST_F(ExprEvalTest, ShortCircuitAnd) {
  // RHS would error (IRI has no EBV) but LHS already decides.
  auto v = Eval("(1 > 2) && (<http://x> = <http://x>)");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST_F(ExprEvalTest, ShortCircuitOr) {
  auto v = Eval("(2 > 1) || ?x");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
}

TEST_F(ExprEvalTest, VariableBinding) {
  EXPECT_EQ(Eval("?x + 1", Term::Integer(41))->int_value(), 42);
  EXPECT_TRUE(Eval("?x = \"hi\"", Term::String("hi"))->bool_value());
}

TEST_F(ExprEvalTest, UnboundVariableComparisonErrors) {
  EXPECT_FALSE(Eval("?x > 1").ok());
}

TEST_F(ExprEvalTest, BoundFunction) {
  EXPECT_TRUE(Eval("BOUND(?x)", Term::Integer(1))->bool_value());
  EXPECT_FALSE(Eval("BOUND(?x)")->bool_value());
  EXPECT_FALSE(Eval("BOUND(1 + 1)").ok()) << "BOUND requires a variable";
}

TEST_F(ExprEvalTest, StrFunction) {
  EXPECT_EQ(Eval("STR(?x)", Term::Iri("http://a"))->string_value(), "http://a");
  EXPECT_EQ(Eval("STR(42)")->string_value(), "42");
}

TEST_F(ExprEvalTest, AbsFunction) {
  EXPECT_EQ(Eval("ABS(0 - 5)")->int_value(), 5);
  EXPECT_DOUBLE_EQ(Eval("ABS(0.0 - 2.5)")->double_value(), 2.5);
  EXPECT_FALSE(Eval("ABS(\"x\")").ok());
}

TEST_F(ExprEvalTest, RegexFunction) {
  EXPECT_TRUE(Eval("REGEX(?x, \"^ab\")", Term::String("abc"))->bool_value());
  EXPECT_FALSE(Eval("REGEX(?x, \"^b\")", Term::String("abc"))->bool_value());
  EXPECT_TRUE(Eval("REGEX(?x, \"^AB\", \"i\")", Term::String("abc"))->bool_value());
  EXPECT_FALSE(Eval("REGEX(?x, \"[\")", Term::String("abc")).ok());
  EXPECT_FALSE(Eval("REGEX(?x, 5)", Term::String("abc")).ok());
}

TEST_F(ExprEvalTest, UnknownFunctionUnimplemented) {
  auto result = Eval("NOSUCHFN(1)");
  // The parser rejects unknown identifiers, so this errors at parse time.
  EXPECT_FALSE(result.ok());
}

TEST_F(ExprEvalTest, AggregateOutsideContextIsInternalError) {
  auto expr = Parser::ParseExpression("SUM(?x)");
  ASSERT_TRUE(expr.ok());
  VariableTable vars;
  vars.GetOrAdd("x");
  Row row(1, kNullTermId);
  ExprEvaluator eval(&dict_, &vars);  // no agg_base
  EXPECT_FALSE(eval.Eval(**expr, row).ok());
}

}  // namespace
}  // namespace sparql
}  // namespace sofos
