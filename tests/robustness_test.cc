/// Failure-injection and hostile-input tests: the engine must degrade to
/// clean Status errors (never crash, never return wrong data silently) on
/// malformed queries, fuzzed inputs and boundary conditions.

#include <string>

#include "common/rng.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "sparql/query_engine.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace {

// --------------------------------------------------------- parser fuzzing

/// Random byte soup must never crash the SPARQL lexer/parser.
class SparqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparqlFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const std::string alphabet =
      "SELECT WHERE FILTER GROUP BY ?x ?y <http://a> \"str\" 123 4.5 "
      "{}()=!<>&|+-*/.;,@^ \n\t_:b PREFIX a:";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      if (rng.Chance(0.9)) {
        input += alphabet[rng.Uniform(alphabet.size())];
      } else {
        input += static_cast<char>(rng.Uniform(256));
      }
    }
    // Either parses or errors; never crashes or hangs.
    auto result = sparql::Parser::Parse(input);
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparqlFuzzTest, ::testing::Values(1, 2, 3));

/// Structured mutations of a valid query: drop/duplicate/swap tokens.
TEST(SparqlFuzzTest, MutatedValidQueriesNeverCrash) {
  const std::string base =
      "PREFIX g: <http://g#> SELECT ?a (SUM(?v) AS ?s) WHERE { ?a g:p ?v . "
      "FILTER(?v > 3 && ?a != g:x) } GROUP BY ?a ORDER BY DESC(?s) LIMIT 5";
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng.Uniform(128)));
          break;
        default:
          if (pos + 1 < mutated.size()) std::swap(mutated[pos], mutated[pos + 1]);
      }
      if (mutated.empty()) mutated = "x";
    }
    auto result = sparql::Parser::Parse(mutated);
    (void)result;
  }
}

/// Random byte soup through the Turtle parser.
class TurtleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TurtleFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const std::string alphabet =
      "<http://a> _:b \"lit\" @prefix p: . ; , 12 3.4 true false a #c\n\\\"^^";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = rng.Uniform(150);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Uniform(alphabet.size())];
    }
    TripleStore store;
    TurtleParser parser;
    (void)parser.Parse(input, &store);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TurtleFuzzTest, ::testing::Values(4, 5, 6));

// ------------------------------------------------------ engine boundaries

class BoundaryTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::BuildFigure1Graph(&store_); }
  TripleStore store_;
};

TEST_F(BoundaryTest, HugeLimitAndOffset) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?s WHERE { ?s ?p ?o } LIMIT 999999999 OFFSET 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), store_.NumTriples());

  auto beyond = engine.Execute("SELECT ?s WHERE { ?s ?p ?o } OFFSET 999999999");
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond->NumRows(), 0u);

  auto zero = engine.Execute("SELECT ?s WHERE { ?s ?p ?o } LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->NumRows(), 0u);
}

TEST_F(BoundaryTest, ProjectingUnknownVariableYieldsUnbound) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute("SELECT ?ghost WHERE { ?s ?p ?o } LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_FALSE(r->bound[0][0]);
}

TEST_F(BoundaryTest, DivisionByZeroInProjectionYieldsUnbound) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ((?p / 0) AS ?broken) WHERE { "
      "?c <http://example.org/population> ?p } LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->bound[0][0]);
}

TEST_F(BoundaryTest, FilterOnMissingVariableYieldsEmpty) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?s WHERE { ?s ?p ?o . FILTER(?nothere > 1) }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(BoundaryTest, DeeplyNestedExpression) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto parsed = sparql::Parser::ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
}

TEST_F(BoundaryTest, ManyPatternsQuery) {
  // 12-way self-join: planner and executor must cope.
  std::string where;
  for (int i = 0; i < 12; ++i) {
    where += "?s <http://example.org/language> ?l" + std::to_string(i) + " . ";
  }
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute("SELECT ?s WHERE { " + where + "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->NumRows(), 0u);
}

TEST_F(BoundaryTest, EmptyGraphQueries) {
  TripleStore empty;
  empty.Finalize();
  sparql::QueryEngine engine(&empty);
  auto rows = engine.Execute("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->NumRows(), 0u);
  auto count = engine.Execute("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64().value(), 0);
}

// ------------------------------------------------------- engine misuse

TEST(EngineMisuseTest, OperationsBeforeSetupFailCleanly) {
  core::SofosEngine engine;
  core::TripleCountCostModel model;
  EXPECT_FALSE(engine.Profile().ok());
  EXPECT_FALSE(engine.SelectViews(model, 2).ok());
  EXPECT_FALSE(engine.MaterializeViews({0}).ok());
  core::WorkloadQuery query;
  query.sparql = "SELECT ?s WHERE { ?s ?p ?o }";
  EXPECT_FALSE(engine.Answer(query, true).ok());
}

TEST(EngineMisuseTest, SelectBeforeProfileFails) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  core::TripleCountCostModel model;
  EXPECT_FALSE(engine.SelectViews(model, 2).ok());
}

TEST(EngineMisuseTest, LoadUnfinalizedStoreFails) {
  core::SofosEngine engine;
  TripleStore store;
  store.Add(Term::Iri("http://a"), Term::Iri("http://b"), Term::Iri("http://c"));
  EXPECT_FALSE(engine.LoadStore(std::move(store)).ok());
}

TEST(EngineMisuseTest, MalformedWorkloadQueryPropagatesParseError) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  core::WorkloadQuery query;
  query.id = "bad";
  query.sparql = "SELEKT broken";
  auto outcome = engine.Answer(query, false);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kParseError);
}

TEST(EngineMisuseTest, FacetMismatchedQueryStillAnswersFromBase) {
  // A query whose signature claims dims it doesn't have: the rewriter may
  // route it, but the honest path (allow_views=false) must still work and
  // signatures out of range must not crash.
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  ASSERT_TRUE(engine.MaterializeViews({engine.facet().FullMask()}).ok());

  core::WorkloadQuery query;
  query.id = "mislabeled";
  query.signature.group_mask = engine.facet().FullMask();
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT (COUNT(*) AS ?n) WHERE { ?s geo:partOf ?o }";
  auto base = engine.Answer(query, false);
  ASSERT_TRUE(base.ok());
  EXPECT_GT(base->result.NumRows(), 0u);
}

}  // namespace
}  // namespace sofos
