/// Event-driven serve path tests: the M/M/c admission estimator (Erlang-C
/// math, cold start, shed/recover), the epoll event loop's connection
/// handling (slow-loris dribble, mid-write disconnect, idle connections
/// far beyond the worker pool), per-request BUSY shedding under open-loop
/// saturation, the HTTP/JSON query adapter, client retry pushback, and
/// byte-identity of the line protocol across io modes. Runs under the
/// TSan lane (scripts/run_tsan.sh, label `server`).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/facet.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

using server::AdmissionController;
using server::AdmissionOptions;
using server::BlockingClient;
using server::ErlangC;
using server::HttpRequest;
using server::HttpRequestParser;
using server::IoMode;
using server::ServerOptions;
using server::SofosServer;

// ---- Erlang-C -------------------------------------------------------------

TEST(ErlangCTest, KnownValuesAndDomain) {
  // c=1: C(1, a) = a (an M/M/1 arrival queues iff the server is busy).
  EXPECT_NEAR(ErlangC(1, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(ErlangC(1, 0.9), 0.9, 1e-9);
  // No offered load: nobody queues.
  EXPECT_EQ(ErlangC(4, 0.0), 0.0);
  // At/past saturation the formula's domain ends: pinned to 1.
  EXPECT_EQ(ErlangC(2, 2.0), 1.0);
  EXPECT_EQ(ErlangC(2, 5.0), 1.0);
  // c=2, a=1 (rho=0.5): C = (a^2/2!)·(2/(2-a)) / (1 + a + a^2/2!·2/(2-a))
  //                       = 1 / 3.
  EXPECT_NEAR(ErlangC(2, 1.0), 1.0 / 3.0, 1e-9);
  // Monotone in offered load, and more servers queue less.
  EXPECT_LT(ErlangC(4, 1.0), ErlangC(4, 3.0));
  EXPECT_LT(ErlangC(8, 3.0), ErlangC(4, 3.0));
}

// ---- AdmissionController --------------------------------------------------

TEST(AdmissionControllerTest, ColdStartAdmitsWithFallbackHint) {
  AdmissionOptions options;
  options.servers = 2;
  options.fallback_retry_ms = 42;
  AdmissionController controller(options);
  auto decision = controller.Decide(100);  // huge queue, but no model yet
  EXPECT_TRUE(decision.admit);
  EXPECT_EQ(decision.retry_ms, 42);
  EXPECT_EQ(controller.Stats().admitted, 1u);
}

TEST(AdmissionControllerTest, QueueDepthShedsOnceServiceTimeKnown) {
  AdmissionOptions options;
  options.servers = 2;
  options.slo_budget_micros = 10'000.0;  // 10ms
  options.min_retry_ms = 5;
  options.max_retry_ms = 2000;
  options.service_ewma_alpha = 1.0;  // adopt the observation immediately
  AdmissionController controller(options);
  controller.OnComplete(8'000.0);  // S = 8ms

  // Idle: instantaneous wait 0 -> admit.
  EXPECT_TRUE(controller.Decide(0).admit);
  // 2 busy servers + 4 queued: wait = (4+1)*8ms/2 = 20ms > 10ms budget.
  auto shed = controller.Decide(6);
  EXPECT_FALSE(shed.admit);
  EXPECT_NEAR(shed.estimated_wait_micros, 20'000.0, 1.0);
  EXPECT_EQ(shed.retry_ms, 20);  // ceil(20ms), inside [5, 2000]
  // Recovery: the backlog drained -> admitted again.
  EXPECT_TRUE(controller.Decide(1).admit);

  auto stats = controller.Stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.estimated_wait.count, 3u);
}

TEST(AdmissionControllerTest, PeekHasNoSideEffects) {
  AdmissionOptions options;
  options.servers = 1;
  options.slo_budget_micros = 1'000.0;
  options.service_ewma_alpha = 1.0;
  AdmissionController controller(options);
  controller.OnComplete(5'000.0);
  EXPECT_FALSE(controller.Peek(10).admit);
  EXPECT_TRUE(controller.Peek(0).admit);
  auto stats = controller.Stats();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.estimated_wait.count, 0u);
}

TEST(AdmissionControllerTest, RetryHintClampedAndFloored) {
  AdmissionOptions options;
  options.servers = 1;
  options.slo_budget_micros = 1.0;
  options.min_retry_ms = 5;
  options.max_retry_ms = 100;
  options.fallback_retry_ms = 50;
  options.service_ewma_alpha = 1.0;
  AdmissionController controller(options);
  controller.OnComplete(10'000'000.0);  // 10s service: hint would be huge
  auto decision = controller.Decide(4);
  EXPECT_FALSE(decision.admit);
  EXPECT_EQ(decision.retry_ms, 100);  // clamped to max
  // The connection-level hint never drops below the configured floor,
  // even when the load-derived figure is small.
  AdmissionController idle(options);
  EXPECT_EQ(idle.ConnectionRetryHintMs(0), 50);
}

// ---- Loopback fixture -----------------------------------------------------

class EventLoopServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42,
                                        &store);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine_.LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine_.SetFacet(std::move(facet).value()));
    SOFOS_ASSERT_OK(engine_.Profile().status());
    core::TripleCountCostModel model;
    SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, engine_.SelectViews(model, 2));
    SOFOS_ASSERT_OK(engine_.MaterializeSelection(selection).status());
  }

  core::SofosEngine engine_;
};

/// Raw loopback socket helper for tests that need byte-level control
/// (partial writes, abrupt close) the BlockingClient hides.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawHttp(uint16_t port, const std::string& request) {
  int fd = RawConnect(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string UrlEncode(const std::string& in) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (char c : in) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '-' || c == '_' || c == '.' || c == '~') {
      out += c;
    } else {
      out += '%';
      out += hex[u >> 4];
      out += hex[u & 15];
    }
  }
  return out;
}

/// QUERY headers carry a wall-clock micros figure; normalize it so two
/// executions of the same query compare equal.
std::string MaskMicros(const std::string& header) {
  size_t at = header.find("micros=");
  return at == std::string::npos ? header : header.substr(0, at) + "micros=X";
}

// ---- Idle-connection capacity (the tentpole's headline claim) -------------

TEST_F(EventLoopServerTest, IdleConnectionsFarBeyondPoolAllServed) {
  ServerOptions options;
  options.max_sessions = 4;
  options.io_threads = 2;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  // 4x max_sessions concurrent connections (the acceptance floor), all
  // held open at once. Thread-per-session would reject everything past
  // max_sessions + queue_capacity; the event loop parks them for the
  // price of a buffer each.
  constexpr int kConnections = 16;
  std::vector<std::unique_ptr<BlockingClient>> clients;
  for (int i = 0; i < kConnections; ++i) {
    auto client = std::make_unique<BlockingClient>();
    SOFOS_ASSERT_OK(client->Connect(server.port()));
    clients.push_back(std::move(client));
  }
  // Connections are registered asynchronously via the loop mailbox;
  // the first roundtrip below forces each one through.

  // /healthz stays green while all of them sit connected...
  std::string health = RawHttp(
      server.http_port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;

  // ...and every single connection still gets answered.
  std::string sparql = engine_.facet().CanonicalQuerySparql(1);
  std::string expected_body;
  for (int i = 0; i < kConnections; ++i) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto response,
                               clients[i]->Roundtrip("QUERY " + sparql));
    ASSERT_TRUE(response.ok()) << "conn " << i << ": " << response.header;
    if (i == 0) expected_body = response.BodyText();
    EXPECT_EQ(response.BodyText(), expected_body) << "conn " << i;
  }
  EXPECT_GE(server.open_connections(),
            static_cast<size_t>(4 * options.max_sessions));

  for (auto& client : clients) client->Roundtrip("QUIT");
  server.Stop();
}

// ---- Hostile / unlucky clients --------------------------------------------

TEST_F(EventLoopServerTest, SlowLorisDribbleDoesNotStallOthers) {
  ServerOptions options;
  options.max_sessions = 2;
  options.io_threads = 1;  // one loop: the dribbler and victim share it
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  int loris = RawConnect(server.port());
  ASSERT_GE(loris, 0);
  // Dribble a request one byte at a time, never finishing the line.
  const std::string partial = "STATS";
  std::atomic<bool> done{false};
  std::thread dribbler([&] {
    for (char c : partial) {
      ::send(loris, &c, 1, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Request still has no terminating newline here.
    while (!done) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });

  // A well-behaved client on the same loop is served while the dribble
  // is in progress.
  BlockingClient victim;
  SOFOS_ASSERT_OK(victim.Connect(server.port()));
  for (int i = 0; i < 5; ++i) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto response, victim.Roundtrip("STATS"));
    EXPECT_TRUE(response.ok()) << response.header;
  }
  done = true;
  dribbler.join();

  // Completing the dribbled request late still yields a full response:
  // partial input was buffered, not dropped.
  std::string rest = "\n";
  ::send(loris, rest.data(), rest.size(), 0);
  std::string answer;
  char buf[4096];
  ssize_t n;
  while (answer.find("\nEND\n") == std::string::npos &&
         (n = ::recv(loris, buf, sizeof(buf), 0)) > 0) {
    answer.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(answer.rfind("OK STATS", 0), 0u) << answer;
  ::close(loris);

  victim.Roundtrip("QUIT");
  server.Stop();
}

TEST_F(EventLoopServerTest, MidResponseDisconnectIsHarmless) {
  ServerOptions options;
  options.max_sessions = 2;
  options.io_threads = 1;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  std::string sparql = engine_.facet().CanonicalQuerySparql(3);
  // Fire a query and slam the connection shut without reading the
  // response: the loop's write hits a dead socket mid-flush.
  for (int i = 0; i < 8; ++i) {
    int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string request = "QUERY " + sparql + "\n";
    ::send(fd, request.data(), request.size(), 0);
    if (i % 2 == 0) {
      // RST rather than FIN: forces ECONNRESET on the server's send.
      struct linger hard {1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    }
    ::close(fd);
  }

  // The server shrugged it all off: a fresh client gets a clean answer.
  BlockingClient survivor;
  SOFOS_ASSERT_OK(survivor.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto response,
                             survivor.Roundtrip("QUERY " + sparql));
  EXPECT_TRUE(response.ok()) << response.header;
  survivor.Roundtrip("QUIT");
  server.Stop();
}

// ---- Saturation: per-request BUSY, then recovery --------------------------

TEST_F(EventLoopServerTest, OverloadShedsWithBusyThenRecovers) {
  ServerOptions options;
  options.max_sessions = 1;  // one worker: trivial to saturate
  options.io_threads = 1;
  options.enable_cache = false;  // every query pays full execution
  options.admission.slo_budget_micros = 1.0;  // any backlog is over budget
  // Leave only the live queue + EWMA as model inputs: the windowed
  // arrival rate would keep reporting flood-era load for seconds after
  // the flood ends, making the recovery half of this test timing-bound.
  options.enable_telemetry = false;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  std::string sparql = engine_.facet().ToSparql();  // the widest query
  constexpr int kClients = 6, kRequests = 20;
  std::atomic<uint64_t> busy{0}, served{0}, errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      BlockingClient client;
      if (!client.Connect(server.port()).ok()) {
        ++errors;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.Roundtrip("QUERY " + sparql);
        if (!response.ok()) {
          ++errors;
          return;
        }
        if (response->busy()) {
          // Shed responses carry a parseable load-derived hint and leave
          // the connection usable (this same client keeps going).
          EXPECT_NE(response->header.find("retry_ms="), std::string::npos);
          ++busy;
        } else if (response->ok()) {
          ++served;
        }
      }
      client.Roundtrip("QUIT");
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(errors, 0u);
  EXPECT_GT(served, 0u);
  // 6 closed-loop clients against 1 worker with a ~zero SLO budget: the
  // queue model must have shed something.
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(server.admission()->Stats().shed, busy);
  EXPECT_GE(server.metrics().rejected(), busy);

  // Recovery: with the flood gone the backlog is empty, so a plain
  // retry loop gets admitted promptly.
  BlockingClient after;
  SOFOS_ASSERT_OK(after.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto response,
                             after.SendWithRetry("QUERY " + sparql, 10));
  EXPECT_TRUE(response.ok() && !response.busy()) << response.header;
  after.Roundtrip("QUIT");
  server.Stop();
}

TEST_F(EventLoopServerTest, SendWithRetryObeysBusyPushback) {
  ServerOptions options;
  options.max_sessions = 1;
  options.io_threads = 1;
  options.enable_cache = false;
  options.admission.slo_budget_micros = 1.0;
  options.enable_telemetry = false;  // live-queue model only (see above)
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  std::string sparql = engine_.facet().ToSparql();
  std::atomic<bool> stop{false};
  // Background pressure so the foreground client actually sees BUSY.
  std::thread pressure([&] {
    BlockingClient client;
    if (!client.Connect(server.port()).ok()) return;
    while (!stop) {
      if (!client.Roundtrip("QUERY " + sparql).ok()) break;
      // A sliver of think time so admit windows exist at all — a zero
      // think-time closed loop over one worker is busy ~always.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));
  int eventually_ok = 0;
  for (int i = 0; i < 10; ++i) {
    auto response = client.SendWithRetry("QUERY " + sparql, 20);
    if (response.ok() && response->ok()) ++eventually_ok;
  }
  stop = true;
  pressure.join();
  // Retrying with the server's own hint must beat one-shot odds: most
  // requests land even under sustained contention (one-shot sends
  // against a mostly-busy single worker would frequently shed).
  EXPECT_GE(eventually_ok, 8);
  client.Roundtrip("QUIT");
  server.Stop();
}

// ---- HTTP/JSON query adapter ----------------------------------------------

TEST_F(EventLoopServerTest, HttpQuerySharesExecutionAndCache) {
  ServerOptions options;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());

  std::string sparql = engine_.facet().CanonicalQuerySparql(1);

  // Line protocol first: populates the shared result cache.
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto line, client.Roundtrip("QUERY " + sparql));
  ASSERT_TRUE(line.ok()) << line.header;
  EXPECT_NE(line.header.find("cached=0"), std::string::npos);

  // GET with the query URL-encoded: same execution path -> cache hit.
  std::string get = RawHttp(server.http_port(),
                            "GET /query?q=" + UrlEncode(sparql) +
                                " HTTP/1.0\r\n\r\n");
  EXPECT_NE(get.find("HTTP/1.0 200"), std::string::npos) << get;
  EXPECT_NE(get.find("\"cached\":true"), std::string::npos) << get;
  EXPECT_NE(get.find("\"bindings\":["), std::string::npos);

  // POST with the raw SPARQL as body: identical answer.
  std::string post = RawHttp(
      server.http_port(),
      "POST /query HTTP/1.0\r\nContent-Length: " +
          std::to_string(sparql.size()) + "\r\n\r\n" + sparql);
  EXPECT_NE(post.find("HTTP/1.0 200"), std::string::npos) << post;
  EXPECT_NE(post.find("\"cached\":true"), std::string::npos) << post;
  // Row count in the JSON matches the line-protocol header's rows=N.
  size_t rows_at = line.header.find("rows=");
  ASSERT_NE(rows_at, std::string::npos);
  std::string rows = line.header.substr(
      rows_at + 5, line.header.find(' ', rows_at) - rows_at - 5);
  EXPECT_NE(post.find("\"rows\":" + rows), std::string::npos) << post;

  // Both surfaces hit the same cache: one miss total, two hits.
  EXPECT_EQ(server.metrics().cache_misses(), 1u);
  EXPECT_EQ(server.metrics().cache_hits(), 2u);
  // The adapter is metered on its own endpoint, not as line QUERY.
  using server::Endpoint;
  EXPECT_EQ(server.metrics()
                .ForEndpoint(Endpoint::kHttpQuery)
                .requests.load(std::memory_order_relaxed),
            2u);

  // Error surfaces: missing query and malformed SPARQL.
  std::string empty = RawHttp(server.http_port(),
                              "GET /query HTTP/1.0\r\n\r\n");
  EXPECT_NE(empty.find("HTTP/1.0 400"), std::string::npos);
  std::string bad = RawHttp(server.http_port(),
                            "GET /query?q=NONSENSE HTTP/1.0\r\n\r\n");
  EXPECT_NE(bad.find("HTTP/1.0 400"), std::string::npos) << bad;
  EXPECT_NE(bad.find("\"error\":"), std::string::npos);
  // Non-query paths keep the observability contract (GET only).
  std::string put = RawHttp(server.http_port(),
                            "PUT /query HTTP/1.0\r\n\r\n");
  EXPECT_NE(put.find("HTTP/1.0 405"), std::string::npos);

  client.Roundtrip("QUIT");
  server.Stop();
}

TEST(HttpRequestParserTest, IncrementalParseAndErrors) {
  HttpRequestParser parser(1024);
  HttpRequest request;
  std::string buffer;

  // Head split across arbitrary chunk boundaries.
  buffer = "POST /query HT";
  EXPECT_EQ(parser.Consume(&buffer, &request),
            HttpRequestParser::State::kNeedMore);
  buffer += "TP/1.0\r\nContent-Length: 5\r\n\r\nhe";
  EXPECT_EQ(parser.Consume(&buffer, &request),
            HttpRequestParser::State::kNeedMore);  // body incomplete
  buffer += "llo!extra";
  ASSERT_EQ(parser.Consume(&buffer, &request),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/query");
  EXPECT_EQ(request.body, "hello");
  EXPECT_EQ(buffer, "!extra");  // only the request's bytes were consumed

  // Bare-LF head, lowercased header names.
  buffer = "GET /stats?x=1 HTTP/1.0\nX-Custom: v\n\n";
  ASSERT_EQ(parser.Consume(&buffer, &request),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(request.params.at("x"), "1");
  EXPECT_EQ(request.headers.at("x-custom"), "v");

  // Oversized head and malformed length are terminal errors.
  HttpRequestParser small(16);
  buffer = std::string(64, 'A');
  EXPECT_EQ(small.Consume(&buffer, &request),
            HttpRequestParser::State::kError);
  HttpRequestParser strict(1024);
  buffer = "POST / HTTP/1.0\r\nContent-Length: nope\r\n\r\n";
  EXPECT_EQ(strict.Consume(&buffer, &request),
            HttpRequestParser::State::kError);
}

// ---- Byte-identity across io modes ----------------------------------------

TEST_F(EventLoopServerTest, IoModesAnswerByteIdentically) {
  // The same scripted session against both io modes: every framed
  // response must match byte for byte (modulo the wall-clock micros
  // figure in QUERY headers).
  std::vector<std::string> script = {
      "QUERY " + engine_.facet().CanonicalQuerySparql(1),
      "QUERY " + engine_.facet().CanonicalQuerySparql(1),  // cache hit
      "QUERY " + engine_.facet().CanonicalQuerySparql(2),
      "EXPLAIN",
      "QUERY",          // usage error
      "NOPE",           // protocol error
      "UPDATE 1 junk",  // strict-parse error
      "HISTORY -1",     // usage error
  };

  auto run = [&](IoMode mode) {
    ServerOptions options;
    options.io_mode = mode;
    options.enable_http = false;
    SofosServer server(&engine_, options);
    EXPECT_TRUE(server.Start().ok());
    BlockingClient client;
    EXPECT_TRUE(client.Connect(server.port()).ok());
    std::vector<std::string> transcript;
    for (const std::string& line : script) {
      auto response = client.Roundtrip(line);
      EXPECT_TRUE(response.ok()) << line;
      if (!response.ok()) break;
      transcript.push_back(MaskMicros(response->header) + "\n" +
                           response->BodyText());
    }
    client.Roundtrip("QUIT");
    server.Stop();
    return transcript;
  };

  std::vector<std::string> event = run(IoMode::kEventLoop);
  std::vector<std::string> thread = run(IoMode::kThreadPerSession);
  ASSERT_EQ(event.size(), script.size());
  ASSERT_EQ(thread.size(), script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(event[i], thread[i]) << "request: " << script[i];
  }
}

}  // namespace
}  // namespace sofos
