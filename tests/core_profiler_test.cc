#include "core/profiler.h"

#include "core/cost_model.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace core {
namespace {

using testing::MustProfile;
using testing::SetUpEngine;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpEngine(&engine_, "geopop"); }
  SofosEngine engine_;
};

TEST_F(ProfilerTest, ProfilesWholeLattice) {
  const LatticeProfile& profile = MustProfile(&engine_);
  EXPECT_EQ(profile.views.size(), 16u);
  EXPECT_EQ(profile.mode, ProfileMode::kExact);
  EXPECT_GT(profile.base_triples, 0u);
  EXPECT_GT(profile.base_nodes, 0u);
  EXPECT_GT(profile.base_pattern_rows, 0u);
  for (const ViewStats& stats : profile.views) {
    EXPECT_FALSE(stats.estimated);
    EXPECT_GT(stats.result_rows, 0u) << engine_.facet().MaskLabel(stats.mask);
  }
}

TEST_F(ProfilerTest, ApexHasExactlyOneRow) {
  const LatticeProfile& profile = MustProfile(&engine_);
  EXPECT_EQ(profile.ForMask(0).result_rows, 1u);
  // Apex encoding: one blank node, view link + value + rows = 3 triples.
  EXPECT_EQ(profile.ForMask(0).encoded_triples, 3u);
}

TEST_F(ProfilerTest, RowsAreMonotoneUpTheLattice) {
  // A view with more dimensions cannot have fewer groups.
  const LatticeProfile& profile = MustProfile(&engine_);
  Lattice lattice(&engine_.facet());
  for (uint32_t mask = 0; mask < profile.views.size(); ++mask) {
    for (uint32_t parent : lattice.Parents(mask)) {
      EXPECT_GE(profile.ForMask(parent).result_rows,
                profile.ForMask(mask).result_rows)
          << engine_.facet().MaskLabel(parent) << " vs "
          << engine_.facet().MaskLabel(mask);
    }
  }
}

TEST_F(ProfilerTest, EncodedTriplesMatchFormula) {
  const LatticeProfile& profile = MustProfile(&engine_);
  for (const ViewStats& stats : profile.views) {
    uint64_t per_row = static_cast<uint64_t>(Lattice::Level(stats.mask)) + 3;
    EXPECT_EQ(stats.encoded_triples, stats.result_rows * per_row);
    EXPECT_GT(stats.encoded_nodes, stats.result_rows);  // blanks + values
    EXPECT_GT(stats.encoded_bytes, 0u);
  }
}

TEST_F(ProfilerTest, BasePatternRowsMatchesDirectCount) {
  const LatticeProfile& profile = MustProfile(&engine_);
  // Count pattern bindings directly.
  sparql::QueryEngine qe(engine_.store());
  auto result = qe.Execute(
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT (COUNT(?pop) AS ?n) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(profile.base_pattern_rows,
            static_cast<uint64_t>(result->rows[0][0].AsInt64().value()));
}

TEST_F(ProfilerTest, SampledModeMarksEstimates) {
  ProfileOptions options;
  options.mode = ProfileMode::kSampled;
  options.sample_rate = 0.25;
  auto profile = engine_.Profile(options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  // The root is always exact; everything else estimated.
  uint32_t full = engine_.facet().FullMask();
  EXPECT_FALSE((*profile)->ForMask(full).estimated);
  EXPECT_TRUE((*profile)->ForMask(0b0011).estimated);
  EXPECT_EQ((*profile)->ForMask(0).result_rows, 1u);
}

TEST_F(ProfilerTest, SampledEstimatesAreInTheRightBallpark) {
  auto exact = engine_.Profile();
  ASSERT_TRUE(exact.ok());
  std::vector<uint64_t> exact_rows;
  for (const auto& v : (*exact)->views) exact_rows.push_back(v.result_rows);

  ProfileOptions options;
  options.mode = ProfileMode::kSampled;
  options.sample_rate = 0.5;
  auto sampled = engine_.Profile(options);
  ASSERT_TRUE(sampled.ok());
  // Estimates never exceed the root cardinality and are positive.
  uint64_t root_rows = exact_rows[engine_.facet().FullMask()];
  for (const auto& v : (*sampled)->views) {
    EXPECT_LE(v.result_rows, root_rows);
    EXPECT_GT(v.result_rows, 0u);
  }
}

// ------------------------------------------------------------ cost models

TEST_F(ProfilerTest, HeuristicCostModelsReadProfile) {
  const LatticeProfile& profile = MustProfile(&engine_);
  TripleCountCostModel triples;
  AggValueCountCostModel aggvalues;
  NodeCountCostModel nodes;
  RandomCostModel random;

  uint32_t full = engine_.facet().FullMask();
  EXPECT_EQ(triples.ViewCost(full, profile),
            static_cast<double>(profile.ForMask(full).encoded_triples));
  EXPECT_EQ(aggvalues.ViewCost(full, profile),
            static_cast<double>(profile.ForMask(full).result_rows));
  EXPECT_EQ(nodes.ViewCost(full, profile),
            static_cast<double>(profile.ForMask(full).encoded_nodes));
  EXPECT_EQ(random.ViewCost(full, profile), 1.0);
  EXPECT_TRUE(random.IsConstant());
  EXPECT_FALSE(triples.IsConstant());

  EXPECT_EQ(triples.BaseCost(profile), static_cast<double>(profile.base_triples));
  EXPECT_EQ(aggvalues.BaseCost(profile),
            static_cast<double>(profile.base_pattern_rows));
  EXPECT_EQ(nodes.BaseCost(profile), static_cast<double>(profile.base_nodes));
}

TEST_F(ProfilerTest, CoarseViewsAreCheaperThanBaseFineViewsMayNotBe) {
  const LatticeProfile& profile = MustProfile(&engine_);
  TripleCountCostModel triples;
  AggValueCountCostModel aggvalues;
  for (const ViewStats& stats : profile.views) {
    // Aggregated-value counts never exceed the raw pattern bindings.
    EXPECT_LE(aggvalues.ViewCost(stats.mask, profile),
              aggvalues.BaseCost(profile));
    // Coarse views are smaller than the base graph under the triple count;
    // for fine-grained views the RDF blank-node encoding (dims + 3 triples
    // per group) can exceed the base graph — the space-amplification
    // pitfall the paper demonstrates, so we do NOT assert it universally.
    if (Lattice::Level(stats.mask) <= 1) {
      EXPECT_LT(triples.ViewCost(stats.mask, profile), triples.BaseCost(profile))
          << engine_.facet().MaskLabel(stats.mask);
    }
  }
}

TEST_F(ProfilerTest, UserDefinedCostModel) {
  const LatticeProfile& profile = MustProfile(&engine_);
  UserDefinedCostModel model({{0b0001, 5.0}, {0b0010, 7.0}}, 100.0, 1000.0);
  EXPECT_EQ(model.ViewCost(0b0001, profile), 5.0);
  EXPECT_EQ(model.ViewCost(0b0010, profile), 7.0);
  EXPECT_EQ(model.ViewCost(0b1111, profile), 100.0);
  EXPECT_EQ(model.BaseCost(profile), 1000.0);
}

TEST_F(ProfilerTest, CostModelKindNamesRoundTrip) {
  for (CostModelKind kind : AllCostModelKinds()) {
    auto parsed = ParseCostModelKind(CostModelKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseCostModelKind("nope").ok());
}

}  // namespace
}  // namespace core
}  // namespace sofos
