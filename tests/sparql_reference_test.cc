/// Property tests pitting the optimizing engine (index scans, join
/// reordering, filter pushdown, hash aggregation) against a deliberately
/// naive reference evaluator on randomized graphs and queries. Any
/// divergence is a planner/executor bug.

#include <map>
#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sparql/expression.h"
#include "sparql/parser.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

/// Brute-force evaluator: enumerates the cross product of all triples per
/// pattern, checks bindings, applies filters last, then groups in memory.
/// O(n^patterns) — only usable on tiny graphs, which is the point.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(TripleStore* store) : store_(store) {}

  Result<std::multiset<std::string>> Evaluate(const std::string& text) {
    SOFOS_ASSIGN_OR_RETURN(Query query, Parser::Parse(text));
    if (query.IsAggregateQuery()) {
      return Status::Unimplemented("reference evaluator: BGP+filters only");
    }
    // Collect variables.
    VariableTable vars;
    for (const auto& tp : query.where) {
      for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
        if (pt->is_var()) vars.GetOrAdd(pt->var());
      }
    }

    std::vector<Row> solutions;
    Row row(vars.size(), kNullTermId);
    Enumerate(query, 0, &row, &vars, &solutions);

    // Apply projection.
    std::multiset<std::string> out;
    for (const Row& solution : solutions) {
      std::string key;
      if (query.select_all) {
        for (size_t i = 0; i < vars.size(); ++i) {
          key += RenderTerm(solution[i]) + "|";
        }
      } else {
        for (const auto& item : query.select) {
          auto slot = vars.Get(item.expr->var);
          key += RenderTerm(slot.has_value() ? solution[*slot] : kNullTermId) + "|";
        }
      }
      out.insert(std::move(key));
    }
    if (query.distinct) {
      std::multiset<std::string> dedup;
      for (auto it = out.begin(); it != out.end(); it = out.upper_bound(*it)) {
        dedup.insert(*it);
      }
      return dedup;
    }
    return out;
  }

 private:
  std::string RenderTerm(TermId id) const {
    if (id == kNullTermId) return "UNBOUND";
    return store_->dictionary().term(id).ToNTriples();
  }

  void Enumerate(const Query& query, size_t index, Row* row, VariableTable* vars,
                 std::vector<Row>* out) {
    if (index == query.where.size()) {
      // All patterns bound: apply every filter (errors drop the row).
      ExprEvaluator eval(&store_->dictionary(), vars);
      for (const auto& filter : query.filters) {
        auto verdict = eval.EvalBool(*filter, *row);
        if (!verdict.ok() || !*verdict) return;
      }
      out->push_back(*row);
      return;
    }
    const TriplePattern& tp = query.where[index];
    for (const Triple& t : store_->Scan(kNullTermId, kNullTermId, kNullTermId)) {
      Row saved = *row;
      if (TryBind(tp, t, row, vars)) {
        Enumerate(query, index + 1, row, vars, out);
      }
      *row = saved;
    }
  }

  bool TryBind(const TriplePattern& tp, const Triple& t, Row* row,
               VariableTable* vars) {
    const PatternTerm* positions[3] = {&tp.s, &tp.p, &tp.o};
    TermId fields[3] = {t.s, t.p, t.o};
    for (int i = 0; i < 3; ++i) {
      if (positions[i]->is_var()) {
        int slot = *vars->Get(positions[i]->var());
        TermId current = (*row)[static_cast<size_t>(slot)];
        if (current == kNullTermId) {
          (*row)[static_cast<size_t>(slot)] = fields[i];
        } else if (current != fields[i]) {
          return false;
        }
      } else {
        auto id = store_->dictionary().Lookup(positions[i]->term());
        if (!id.has_value() || *id != fields[i]) return false;
      }
    }
    return true;
  }

  TripleStore* store_;
};

/// Renders engine results in the reference's key format.
std::multiset<std::string> EngineRows(TripleStore* store, const std::string& query) {
  QueryEngine engine(store);
  auto result = engine.Execute(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << query;
  std::multiset<std::string> out;
  if (!result.ok()) return out;
  for (size_t r = 0; r < result->rows.size(); ++r) {
    std::string key;
    for (size_t c = 0; c < result->rows[r].size(); ++c) {
      key += (result->bound[r][c] ? result->rows[r][c].ToNTriples() : "UNBOUND");
      key += "|";
    }
    out.insert(std::move(key));
  }
  return out;
}

/// Builds a random graph with a small vocabulary so joins actually hit.
TripleStore RandomGraph(Rng* rng, int triples) {
  TripleStore store;
  for (int i = 0; i < triples; ++i) {
    Term s = Term::Iri("http://n/" + std::to_string(rng->Uniform(8)));
    Term p = Term::Iri("http://p/" + std::to_string(rng->Uniform(4)));
    Term o = rng->Chance(0.7)
                 ? Term::Iri("http://n/" + std::to_string(rng->Uniform(8)))
                 : Term::Integer(rng->UniformInt(0, 5));
    store.Add(s, p, o);
  }
  store.Finalize();
  return store;
}

/// Builds a random BGP query over the same vocabulary: 1-3 patterns over
/// variables ?a ?b ?c and random constants, optional filter.
std::string RandomQuery(Rng* rng) {
  const char* vars[] = {"?a", "?b", "?c"};
  std::string where;
  int patterns = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < patterns; ++i) {
    std::string s = rng->Chance(0.7)
                        ? vars[rng->Uniform(3)]
                        : "<http://n/" + std::to_string(rng->Uniform(8)) + ">";
    std::string p = rng->Chance(0.5)
                        ? vars[rng->Uniform(3)]
                        : "<http://p/" + std::to_string(rng->Uniform(4)) + ">";
    std::string o = rng->Chance(0.6)
                        ? vars[rng->Uniform(3)]
                        : (rng->Chance(0.5)
                               ? "<http://n/" + std::to_string(rng->Uniform(8)) + ">"
                               : std::to_string(rng->UniformInt(0, 5)));
    where += "  " + s + " " + p + " " + o + " .\n";
  }
  if (rng->Chance(0.4)) {
    const char* var = vars[rng->Uniform(3)];
    switch (rng->Uniform(3)) {
      case 0:
        where += std::string("  FILTER(") + var + " = <http://n/" +
                 std::to_string(rng->Uniform(8)) + ">)\n";
        break;
      case 1:
        where += std::string("  FILTER(") + var + " > " +
                 std::to_string(rng->UniformInt(0, 5)) + ")\n";
        break;
      default:
        where += std::string("  FILTER(BOUND(") + var + "))\n";
    }
  }
  std::string select = rng->Chance(0.3) ? "SELECT DISTINCT ?a ?b" : "SELECT ?a ?b";
  return select + " WHERE {\n" + where + "}";
}

class ReferenceAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceAgreementTest, EngineMatchesBruteForce) {
  Rng rng(GetParam());
  TripleStore store = RandomGraph(&rng, 60);
  ReferenceEvaluator reference(&store);

  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::string query = RandomQuery(&rng);
    auto expected = reference.Evaluate(query);
    if (!expected.ok()) continue;  // query shape outside reference support
    auto actual = EngineRows(&store, query);
    EXPECT_EQ(actual, *expected) << "query:\n" << query;
    ++compared;
  }
  EXPECT_GT(compared, 15) << "too few comparable queries generated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceAgreementTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

/// Aggregation agreement: the engine's GROUP BY results must match an
/// in-memory aggregation over the engine's own non-aggregated solutions
/// (which the BGP tests above validate against brute force).
class AggregateAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateAgreementTest, GroupByMatchesManualAggregation) {
  Rng rng(GetParam());
  TripleStore store = RandomGraph(&rng, 80);

  const std::string flat =
      "SELECT ?a ?v WHERE { ?a <http://p/0> ?b . ?a <http://p/1> ?v }";
  QueryEngine engine(&store);
  auto rows = engine.Execute(flat);
  ASSERT_TRUE(rows.ok());

  std::map<std::string, std::pair<int64_t, int64_t>> expected;  // sum, count
  for (size_t r = 0; r < rows->rows.size(); ++r) {
    if (!rows->bound[r][0] || !rows->bound[r][1]) continue;
    const Term& key = rows->rows[r][0];
    const Term& val = rows->rows[r][1];
    auto& acc = expected[key.ToNTriples()];
    if (val.is_numeric()) acc.first += val.AsInt64().ValueOr(0);
    ++acc.second;
  }

  const std::string grouped =
      "SELECT ?a (SUM(?v) AS ?s) (COUNT(?v) AS ?n) WHERE { "
      "?a <http://p/0> ?b . ?a <http://p/1> ?v } GROUP BY ?a";
  auto agg = engine.Execute(grouped);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg->NumRows(), expected.size());
  for (size_t r = 0; r < agg->rows.size(); ++r) {
    const auto& acc = expected.at(agg->rows[r][0].ToNTriples());
    EXPECT_EQ(agg->rows[r][1].AsInt64().ValueOr(-1), acc.first);
    EXPECT_EQ(agg->rows[r][2].AsInt64().ValueOr(-1), acc.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateAgreementTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sparql
}  // namespace sofos
