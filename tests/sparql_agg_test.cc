#include "gtest/gtest.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

using sparql::QueryResult;
using testing::BuildFigure1Graph;
using testing::MustExecute;

class AggTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildFigure1Graph(&store_); }

  /// Finds the row whose first column equals `key` and returns column 1.
  static const Term& Lookup(const QueryResult& r, const Term& key) {
    for (size_t i = 0; i < r.rows.size(); ++i) {
      if (r.rows[i][0] == key) return r.rows[i][1];
    }
    ADD_FAILURE() << "key not found: " << key.ToNTriples();
    static Term dummy;
    return dummy;
  }

  TripleStore store_;
};

TEST_F(AggTest, CountStarNoGroup) {
  QueryResult r = MustExecute(
      &store_, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(),
            static_cast<int64_t>(store_.NumTriples()));
}

TEST_F(AggTest, CountGroupedByLanguage) {
  // Paper Example 1.1: "in how many countries is French an official
  // language?"
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?l (COUNT(?c) AS ?n) WHERE { "
      "?c <http://example.org/language> ?l } GROUP BY ?l");
  ASSERT_EQ(r.NumRows(), 4u);  // French, German, Italian, English
  EXPECT_EQ(Lookup(r, Term::String("French")).AsInt64().value(), 2);
  EXPECT_EQ(Lookup(r, Term::String("German")).AsInt64().value(), 1);
}

TEST_F(AggTest, SumGroupedByLanguage) {
  // Paper Example 1.1: "total amount of French-speaking population".
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?l (SUM(?p) AS ?total) WHERE { "
      "?c <http://example.org/language> ?l . "
      "?c <http://example.org/population> ?p } GROUP BY ?l");
  EXPECT_EQ(Lookup(r, Term::String("French")).AsInt64().value(),
            67000000 + 37000000);
  EXPECT_EQ(Lookup(r, Term::String("English")).AsInt64().value(), 37000000);
}

TEST_F(AggTest, AvgProducesDouble) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (AVG(?p) AS ?avg) WHERE { "
      "?c <http://example.org/population> ?p . "
      "?c <http://example.org/partOf> <http://example.org/EU> }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble().value(),
                   (67000000.0 + 82000000.0 + 60000000.0) / 3.0);
}

TEST_F(AggTest, MinMax) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) WHERE { "
      "?c <http://example.org/population> ?p }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 37000000);
  EXPECT_EQ(r.rows[0][1].AsInt64().value(), 82000000);
}

TEST_F(AggTest, MinMaxOnStrings) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (MIN(?l) AS ?first) (MAX(?l) AS ?last) WHERE { "
      "?c <http://example.org/language> ?l }");
  EXPECT_EQ(r.rows[0][0].lexical(), "English");
  EXPECT_EQ(r.rows[0][1].lexical(), "Italian");
}

TEST_F(AggTest, CountDistinct) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (COUNT(DISTINCT ?cont) AS ?n) WHERE { "
      "?c <http://example.org/partOf> ?cont }");
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 2);
}

TEST_F(AggTest, SumDistinctDeduplicates) {
  // Canada appears twice (two languages); DISTINCT sums its population once.
  QueryResult plain = MustExecute(
      &store_,
      "SELECT (SUM(?p) AS ?t) WHERE { ?c <http://example.org/language> ?l . "
      "?c <http://example.org/population> ?p . "
      "?c <http://example.org/partOf> <http://example.org/NA> }");
  QueryResult distinct = MustExecute(
      &store_,
      "SELECT (SUM(DISTINCT ?p) AS ?t) WHERE { ?c <http://example.org/language> ?l . "
      "?c <http://example.org/population> ?p . "
      "?c <http://example.org/partOf> <http://example.org/NA> }");
  EXPECT_EQ(plain.rows[0][0].AsInt64().value(), 74000000);
  EXPECT_EQ(distinct.rows[0][0].AsInt64().value(), 37000000);
}

TEST_F(AggTest, GroupByTwoVariables) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?cont ?l (COUNT(*) AS ?n) WHERE { "
      "?c <http://example.org/partOf> ?cont . "
      "?c <http://example.org/language> ?l } GROUP BY ?cont ?l");
  // (EU,French) (EU,German) (EU,Italian) (NA,French) (NA,English)
  EXPECT_EQ(r.NumRows(), 5u);
}

TEST_F(AggTest, AggregateOverEmptyInputCountZero) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (COUNT(*) AS ?n) (SUM(?p) AS ?s) WHERE { "
      "?c <http://example.org/language> \"Klingon\" . "
      "?c <http://example.org/population> ?p }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 0);
  EXPECT_EQ(r.rows[0][1].AsInt64().value(), 0);  // SUM of empty = 0
}

TEST_F(AggTest, AvgOverEmptyInputUnbound) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (AVG(?p) AS ?a) WHERE { "
      "?c <http://example.org/language> \"Klingon\" . "
      "?c <http://example.org/population> ?p }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_FALSE(r.bound[0][0]);
}

TEST_F(AggTest, GroupedQueryOverEmptyInputHasNoRows) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?l (COUNT(*) AS ?n) WHERE { "
      "?c <http://example.org/language> \"Klingon\" . "
      "?c <http://example.org/language> ?l } GROUP BY ?l");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(AggTest, HavingFiltersGroups) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?l (COUNT(?c) AS ?n) WHERE { "
      "?c <http://example.org/language> ?l } GROUP BY ?l HAVING (COUNT(?c) > 1)");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].lexical(), "French");
}

TEST_F(AggTest, ExpressionOverAggregates) {
  // The AVG roll-up shape the view rewriter emits: SUM(x)/SUM(y).
  QueryResult r = MustExecute(
      &store_,
      "SELECT ((SUM(?p) / COUNT(?p)) AS ?avg) WHERE { "
      "?c <http://example.org/population> ?p . "
      "?c <http://example.org/partOf> <http://example.org/EU> }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble().value(),
                   (67000000.0 + 82000000.0 + 60000000.0) / 3.0);
}

TEST_F(AggTest, SumOfDoublesIsDouble) {
  store_.Add(Term::Iri("http://example.org/X"),
             Term::Iri("http://example.org/score"), Term::Double(1.5));
  store_.Add(Term::Iri("http://example.org/Y"),
             Term::Iri("http://example.org/score"), Term::Double(2.25));
  store_.Finalize();
  QueryResult r = MustExecute(
      &store_,
      "SELECT (SUM(?s) AS ?t) WHERE { ?x <http://example.org/score> ?s }");
  EXPECT_EQ(r.rows[0][0].datatype(), Term::Datatype::kDouble);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble().value(), 3.75);
}

TEST_F(AggTest, SumSkipsNonNumericValues) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT (SUM(?l) AS ?t) (COUNT(?l) AS ?n) WHERE { "
      "?c <http://example.org/language> ?l }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 0);  // strings don't sum
  EXPECT_EQ(r.rows[0][1].AsInt64().value(), 5);  // but they do count
}

TEST_F(AggTest, OrderByAggregateAlias) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?l (SUM(?p) AS ?total) WHERE { "
      "?c <http://example.org/language> ?l . "
      "?c <http://example.org/population> ?p } GROUP BY ?l "
      "ORDER BY DESC(?total) LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical(), "French");
}

TEST_F(AggTest, ErrorUngroupedVariableProjected) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?c (COUNT(*) AS ?n) WHERE { ?c <http://example.org/language> ?l } "
      "GROUP BY ?l");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggTest, ErrorGroupByUnknownVariable) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?z (COUNT(*) AS ?n) WHERE { ?c <http://example.org/language> ?l } "
      "GROUP BY ?z");
  EXPECT_FALSE(r.ok());
}

TEST_F(AggTest, ErrorAggregateInWhereFilter) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?c WHERE { ?c <http://example.org/language> ?l . "
      "FILTER(COUNT(?l) > 1) }");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sofos
