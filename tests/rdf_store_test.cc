#include "rdf/triple_store.h"

#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

Term Iri(const std::string& s) { return Term::Iri("http://t/" + s); }

class SmallStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // s1 -p1-> o1, o2 ; s2 -p1-> o1 ; s2 -p2-> o3 ; s3 -p2-> o3
    store_.Add(Iri("s1"), Iri("p1"), Iri("o1"));
    store_.Add(Iri("s1"), Iri("p1"), Iri("o2"));
    store_.Add(Iri("s2"), Iri("p1"), Iri("o1"));
    store_.Add(Iri("s2"), Iri("p2"), Iri("o3"));
    store_.Add(Iri("s3"), Iri("p2"), Iri("o3"));
    store_.Finalize();
  }

  TermId Id(const std::string& s) {
    return store_.mutable_dictionary()->Intern(Iri(s));
  }

  TripleStore store_;
};

TEST_F(SmallStoreTest, CountsAndBasics) {
  EXPECT_EQ(store_.NumTriples(), 5u);
  EXPECT_TRUE(store_.finalized());
  EXPECT_EQ(store_.NumPredicates(), 2u);
}

TEST_F(SmallStoreTest, FullScan) {
  EXPECT_EQ(store_.Scan(kNullTermId, kNullTermId, kNullTermId).size(), 5u);
}

TEST_F(SmallStoreTest, ScanBySubject) {
  EXPECT_EQ(store_.Scan(Id("s1"), kNullTermId, kNullTermId).size(), 2u);
  EXPECT_EQ(store_.Scan(Id("s2"), kNullTermId, kNullTermId).size(), 2u);
  EXPECT_EQ(store_.Scan(Id("s3"), kNullTermId, kNullTermId).size(), 1u);
}

TEST_F(SmallStoreTest, ScanByPredicate) {
  EXPECT_EQ(store_.Scan(kNullTermId, Id("p1"), kNullTermId).size(), 3u);
  EXPECT_EQ(store_.Scan(kNullTermId, Id("p2"), kNullTermId).size(), 2u);
}

TEST_F(SmallStoreTest, ScanByObject) {
  EXPECT_EQ(store_.Scan(kNullTermId, kNullTermId, Id("o1")).size(), 2u);
  EXPECT_EQ(store_.Scan(kNullTermId, kNullTermId, Id("o3")).size(), 2u);
}

TEST_F(SmallStoreTest, ScanBoundPairs) {
  EXPECT_EQ(store_.Scan(Id("s1"), Id("p1"), kNullTermId).size(), 2u);
  EXPECT_EQ(store_.Scan(Id("s1"), kNullTermId, Id("o2")).size(), 1u);
  EXPECT_EQ(store_.Scan(kNullTermId, Id("p2"), Id("o3")).size(), 2u);
}

TEST_F(SmallStoreTest, ScanFullyBound) {
  EXPECT_TRUE(store_.Contains(Id("s1"), Id("p1"), Id("o1")));
  EXPECT_FALSE(store_.Contains(Id("s1"), Id("p2"), Id("o1")));
}

TEST_F(SmallStoreTest, ScanMissesReturnEmpty) {
  TermId ghost = store_.mutable_dictionary()->Intern(Iri("ghost"));
  EXPECT_EQ(store_.Scan(ghost, kNullTermId, kNullTermId).size(), 0u);
  EXPECT_TRUE(store_.Scan(ghost, kNullTermId, kNullTermId).empty());
}

TEST_F(SmallStoreTest, DuplicatesRemovedOnFinalize) {
  store_.Add(Iri("s1"), Iri("p1"), Iri("o1"));  // duplicate
  EXPECT_FALSE(store_.finalized());
  store_.Finalize();
  EXPECT_EQ(store_.NumTriples(), 5u);
}

TEST_F(SmallStoreTest, PredicateStats) {
  const PredicateStats* p1 = store_.StatsFor(Id("p1"));
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->triples, 3u);
  EXPECT_EQ(p1->distinct_subjects, 2u);  // s1, s2
  EXPECT_EQ(p1->distinct_objects, 2u);   // o1, o2

  const PredicateStats* p2 = store_.StatsFor(Id("p2"));
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->triples, 2u);
  EXPECT_EQ(p2->distinct_subjects, 2u);  // s2, s3
  EXPECT_EQ(p2->distinct_objects, 1u);   // o3

  EXPECT_EQ(store_.StatsFor(Id("nosuch")), nullptr);
}

TEST_F(SmallStoreTest, NodeCountExcludesPredicates) {
  // Nodes: s1 s2 s3 o1 o2 o3 = 6 (p1/p2 appear only as predicates).
  EXPECT_EQ(store_.NumNodes(), 6u);
}

TEST_F(SmallStoreTest, IncrementalAddAndRefinalize) {
  store_.Add(Iri("s4"), Iri("p1"), Iri("o1"));
  store_.Finalize();
  EXPECT_EQ(store_.NumTriples(), 6u);
  EXPECT_EQ(store_.Scan(kNullTermId, Id("p1"), kNullTermId).size(), 4u);
  EXPECT_EQ(store_.StatsFor(Id("p1"))->distinct_subjects, 3u);
}

TEST_F(SmallStoreTest, MemoryBytesPositiveAndGrows) {
  uint64_t before = store_.MemoryBytes();
  EXPECT_GT(before, 0u);
  for (int i = 0; i < 100; ++i) {
    store_.Add(Iri("bulk" + std::to_string(i)), Iri("p1"), Iri("o1"));
  }
  store_.Finalize();
  EXPECT_GT(store_.MemoryBytes(), before);
}

TEST(TripleStoreTest, EmptyStoreFinalizes) {
  TripleStore store;
  store.Finalize();
  EXPECT_EQ(store.NumTriples(), 0u);
  EXPECT_EQ(store.NumNodes(), 0u);
  EXPECT_EQ(store.Scan(kNullTermId, kNullTermId, kNullTermId).size(), 0u);
}

TEST(TripleStoreTest, FinalizeIsIdempotent) {
  TripleStore store;
  store.Add(Iri("a"), Iri("b"), Iri("c"));
  store.Finalize();
  store.Finalize();
  EXPECT_EQ(store.NumTriples(), 1u);
}

TEST(TripleStoreTest, LiteralObjectsAreNodes) {
  TripleStore store;
  store.Add(Iri("a"), Iri("p"), Term::Integer(5));
  store.Add(Iri("b"), Iri("p"), Term::Integer(5));
  store.Finalize();
  // Nodes: a, b, "5" → 3.
  EXPECT_EQ(store.NumNodes(), 3u);
}

/// Property test: for random graphs, every Scan() result agrees with a
/// brute-force filter over all triples, for every bound/unbound combination.
class ScanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScanPropertyTest, ScanMatchesBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  const int kSubjects = 20, kPredicates = 5, kObjects = 15;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    store.Add(Iri("s" + std::to_string(rng.Uniform(kSubjects))),
              Iri("p" + std::to_string(rng.Uniform(kPredicates))),
              Iri("o" + std::to_string(rng.Uniform(kObjects))));
  }
  store.Finalize();

  const auto& all = store.triples();
  // Try 50 random patterns across all 8 bound/unbound combinations.
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t mask = rng.Uniform(8);
    TermId s = (mask & 1) ? all[rng.Uniform(all.size())].s : kNullTermId;
    TermId p = (mask & 2) ? all[rng.Uniform(all.size())].p : kNullTermId;
    TermId o = (mask & 4) ? all[rng.Uniform(all.size())].o : kNullTermId;

    std::multiset<std::tuple<TermId, TermId, TermId>> expected;
    for (const Triple& t : all) {
      if ((s == kNullTermId || t.s == s) && (p == kNullTermId || t.p == p) &&
          (o == kNullTermId || t.o == o)) {
        expected.emplace(t.s, t.p, t.o);
      }
    }
    std::multiset<std::tuple<TermId, TermId, TermId>> actual;
    for (const Triple& t : store.Scan(s, p, o)) {
      actual.emplace(t.s, t.p, t.o);
    }
    EXPECT_EQ(actual, expected) << "pattern mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ScanPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace sofos
