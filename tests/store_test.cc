/// Tests for the sharded copy-on-write TripleStore:
///   - shard invariance: Scan() byte-identity, statistics, query answers,
///     Explain output, and maintenance blank labels across
///     shard_count ∈ {1, 2, 8} on every bundled dataset
///   - COW aliasing: Clone() shares every shard; ApplyDelta() replaces
///     exactly the delta-touched shards and leaves clones byte-stable
///   - repartitioning via SetShardCount and the shared-dictionary contract

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using core::maintenance::GraphDelta;
using core::maintenance::TermTriple;
using testing::ExpectSameAnswers;

Term Iri(const std::string& s) { return Term::Iri("http://t/" + s); }

/// A random but deterministic graph used by the store-level tests.
void BuildRandomGraph(TripleStore* store, uint64_t seed, int n = 400) {
  Rng rng(seed);
  const int kSubjects = 40, kPredicates = 7, kObjects = 25;
  for (int i = 0; i < n; ++i) {
    store->Add(Iri("s" + std::to_string(rng.Uniform(kSubjects))),
               Iri("p" + std::to_string(rng.Uniform(kPredicates))),
               Iri("o" + std::to_string(rng.Uniform(kObjects))));
  }
  store->Finalize();
}

/// Exact (order-preserving) byte image of a scan: the id triples in the
/// order the range returns them.
std::vector<std::tuple<TermId, TermId, TermId>> ScanImage(
    const TripleStore& store, TermId s, TermId p, TermId o) {
  std::vector<std::tuple<TermId, TermId, TermId>> out;
  for (const Triple& t : store.Scan(s, p, o)) out.emplace_back(t.s, t.p, t.o);
  return out;
}

TEST(ShardInvarianceTest, ScanByteIdentityAcrossShardCounts) {
  TripleStore reference;
  BuildRandomGraph(&reference, 42);
  ASSERT_EQ(reference.shard_count(), 1u);

  for (size_t shards : {2u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shards));
    TripleStore sharded;
    sharded.SetShardCount(shards);
    BuildRandomGraph(&sharded, 42);  // same dictionary ids: same build order
    EXPECT_EQ(sharded.shard_count(), shards);

    const auto& all = reference.triples();
    ASSERT_EQ(sharded.triples().size(), all.size());
    // Every bound/unbound combination, exact order included.
    Rng rng(7);
    for (int trial = 0; trial < 80; ++trial) {
      uint64_t mask = rng.Uniform(8);
      TermId s = (mask & 1) ? all[rng.Uniform(all.size())].s : kNullTermId;
      TermId p = (mask & 2) ? all[rng.Uniform(all.size())].p : kNullTermId;
      TermId o = (mask & 4) ? all[rng.Uniform(all.size())].o : kNullTermId;
      EXPECT_EQ(ScanImage(sharded, s, p, o), ScanImage(reference, s, p, o))
          << "pattern mask=" << mask;
      // Morsel boundaries depend only on range length: identical too.
      auto ref_parts = reference.ScanPartitions(s, p, o, 4);
      auto sh_parts = sharded.ScanPartitions(s, p, o, 4);
      ASSERT_EQ(sh_parts.size(), ref_parts.size());
      for (size_t i = 0; i < ref_parts.size(); ++i) {
        EXPECT_EQ(sh_parts[i].size(), ref_parts[i].size());
      }
    }

    // Statistics are shard-invariant.
    EXPECT_EQ(sharded.NumTriples(), reference.NumTriples());
    EXPECT_EQ(sharded.NumNodes(), reference.NumNodes());
    EXPECT_EQ(sharded.NumPredicates(), reference.NumPredicates());
    for (const auto& [pred, stats] : reference.predicate_stats()) {
      const PredicateStats* other = sharded.StatsFor(pred);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(other->triples, stats.triples);
      EXPECT_EQ(other->distinct_subjects, stats.distinct_subjects);
      EXPECT_EQ(other->distinct_objects, stats.distinct_objects);
    }
  }
}

TEST(ShardInvarianceTest, SingleShardServesFullScanFromCanonical) {
  TripleStore store;
  BuildRandomGraph(&store, 5);
  // The unbound pattern is the canonical array itself — same bytes, same
  // storage — at every shard count.
  EXPECT_EQ(store.Scan(kNullTermId, kNullTermId, kNullTermId).begin(),
            store.triples().data());
  store.SetShardCount(8);
  EXPECT_EQ(store.Scan(kNullTermId, kNullTermId, kNullTermId).begin(),
            store.triples().data());
}

TEST(ShardInvarianceTest, ApplyDeltaMatchesRebuildAtEveryShardCount) {
  for (size_t shards : {1u, 2u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shards));
    TripleStore store;
    store.SetShardCount(shards);
    testing::BuildFigure1Graph(&store);

    auto iri = [](const std::string& s) {
      return Term::Iri("http://example.org/" + s);
    };
    store.StageDelete(iri("France"), iri("language"), Term::String("French"));
    store.StageDelete(iri("Atlantis"), iri("name"), Term::String("Atlantis"));
    store.StageAdd(iri("Spain"), iri("name"), Term::String("Spain"));
    store.StageAdd(iri("Germany"), iri("language"), Term::String("German"));
    store.StageAdd(iri("Canada"), iri("year"), Term::Integer(2019));
    store.StageDelete(iri("Canada"), iri("year"), Term::Integer(2019));
    DeltaApplyResult result = store.ApplyDelta();
    EXPECT_EQ(result.adds_applied, 1u);
    EXPECT_EQ(result.deletes_applied, 1u);
    EXPECT_GT(result.shards_rebuilt, 0u);
    EXPECT_LE(result.shards_rebuilt, 3 * shards);

    // Control: the same final triple set built through the legacy path.
    TripleStore control;
    const Dictionary& dict = store.dictionary();
    for (const Triple& t : store.triples()) {
      control.Add(dict.term(t.s), dict.term(t.p), dict.term(t.o));
    }
    control.Finalize();
    EXPECT_EQ(store.NumTriples(), control.NumTriples());
    EXPECT_EQ(store.NumNodes(), control.NumNodes());
    EXPECT_EQ(store.NumPredicates(), control.NumPredicates());
    for (const Triple& t : store.triples()) {
      auto cs = control.dictionary().Lookup(dict.term(t.s));
      auto cp = control.dictionary().Lookup(dict.term(t.p));
      auto co = control.dictionary().Lookup(dict.term(t.o));
      ASSERT_TRUE(cs && cp && co);
      EXPECT_EQ(store.Count(t.s, kNullTermId, kNullTermId),
                control.Count(*cs, kNullTermId, kNullTermId));
      EXPECT_EQ(store.Count(kNullTermId, t.p, kNullTermId),
                control.Count(kNullTermId, *cp, kNullTermId));
      EXPECT_EQ(store.Count(kNullTermId, kNullTermId, t.o),
                control.Count(kNullTermId, kNullTermId, *co));
      EXPECT_EQ(store.Count(t.s, kNullTermId, t.o),
                control.Count(*cs, kNullTermId, *co));
      EXPECT_EQ(store.Count(kNullTermId, t.p, t.o),
                control.Count(kNullTermId, *cp, *co));
      EXPECT_TRUE(store.Contains(t.s, t.p, t.o));
    }
  }
}

TEST(ShardInvarianceTest, SetShardCountRepartitionsInPlace) {
  TripleStore store;
  BuildRandomGraph(&store, 11);
  auto before = ScanImage(store, kNullTermId, kNullTermId, kNullTermId);
  uint64_t nodes = store.NumNodes();

  ThreadPool pool(4);
  store.SetShardCount(4, &pool);
  EXPECT_EQ(store.shard_count(), 4u);
  EXPECT_EQ(ScanImage(store, kNullTermId, kNullTermId, kNullTermId), before);
  EXPECT_EQ(store.NumNodes(), nodes);

  store.SetShardCount(1);
  EXPECT_EQ(store.shard_count(), 1u);
  EXPECT_EQ(ScanImage(store, kNullTermId, kNullTermId, kNullTermId), before);
  EXPECT_EQ(store.NumNodes(), nodes);
}

TEST(ShardInvarianceTest, ParallelFinalizeAndDeltaMatchSerial) {
  ThreadPool pool(4);
  TripleStore serial, parallel;
  serial.SetShardCount(8);
  parallel.SetShardCount(8);
  BuildRandomGraph(&serial, 17);
  {
    Rng rng(17);
    const int kSubjects = 40, kPredicates = 7, kObjects = 25;
    for (int i = 0; i < 400; ++i) {
      parallel.Add(Iri("s" + std::to_string(rng.Uniform(kSubjects))),
                   Iri("p" + std::to_string(rng.Uniform(kPredicates))),
                   Iri("o" + std::to_string(rng.Uniform(kObjects))));
    }
    parallel.Finalize(&pool);
  }
  EXPECT_EQ(ScanImage(parallel, kNullTermId, kNullTermId, kNullTermId),
            ScanImage(serial, kNullTermId, kNullTermId, kNullTermId));

  for (TripleStore* store : {&serial, &parallel}) {
    store->StageAdd(Iri("s1"), Iri("p1"), Iri("fresh"));
    store->StageDelete(Iri("s1"), Iri("p1"), Iri("o1"));
  }
  DeltaApplyResult a = serial.ApplyDelta(nullptr);
  DeltaApplyResult b = parallel.ApplyDelta(&pool);
  EXPECT_EQ(a.adds_applied, b.adds_applied);
  EXPECT_EQ(a.deletes_applied, b.deletes_applied);
  EXPECT_EQ(a.shards_rebuilt, b.shards_rebuilt);
  EXPECT_EQ(ScanImage(parallel, kNullTermId, kNullTermId, kNullTermId),
            ScanImage(serial, kNullTermId, kNullTermId, kNullTermId));
  EXPECT_EQ(serial.NumNodes(), parallel.NumNodes());
}

TEST(CowTest, CloneAliasesEveryShardAndTheCanonicalArray) {
  TripleStore store;
  store.SetShardCount(8);
  BuildRandomGraph(&store, 3);
  TripleStore clone = store.Clone();

  EXPECT_EQ(clone.CanonicalIdentity(), store.CanonicalIdentity());
  for (int f = 0; f < TripleStore::kNumFamilies; ++f) {
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_EQ(clone.ShardIdentity(static_cast<TripleStore::Family>(f), k),
                store.ShardIdentity(static_cast<TripleStore::Family>(f), k));
    }
  }
  // DeepClone shares nothing.
  TripleStore deep = store.DeepClone();
  EXPECT_NE(deep.CanonicalIdentity(), store.CanonicalIdentity());
  for (int f = 0; f < TripleStore::kNumFamilies; ++f) {
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_NE(deep.ShardIdentity(static_cast<TripleStore::Family>(f), k),
                store.ShardIdentity(static_cast<TripleStore::Family>(f), k));
    }
  }
}

TEST(CowTest, ApplyDeltaRebuildsOnlyTouchedShards) {
  constexpr size_t kShards = 8;
  TripleStore store;
  store.SetShardCount(kShards);
  BuildRandomGraph(&store, 9);
  TripleStore clone = store.Clone();

  // One added triple with a brand-new subject/object: exactly one bucket
  // per family may change.
  TermId s = store.Intern(Iri("fresh-subject"));
  TermId p = store.Intern(Iri("p1"));
  TermId o = store.Intern(Iri("fresh-object"));
  store.StageAdd(s, p, o);
  DeltaApplyResult result = store.ApplyDelta();
  ASSERT_EQ(result.adds_applied, 1u);
  EXPECT_EQ(result.shards_rebuilt, 3u);  // one bucket in each family

  const size_t touched[TripleStore::kNumFamilies] = {
      TripleStore::ShardIndexFor(s, kShards),
      TripleStore::ShardIndexFor(p, kShards),
      TripleStore::ShardIndexFor(o, kShards),
  };
  EXPECT_NE(store.CanonicalIdentity(), clone.CanonicalIdentity());
  for (int f = 0; f < TripleStore::kNumFamilies; ++f) {
    for (size_t k = 0; k < kShards; ++k) {
      auto family = static_cast<TripleStore::Family>(f);
      if (k == touched[f]) {
        EXPECT_NE(store.ShardIdentity(family, k), clone.ShardIdentity(family, k))
            << "family " << f << " bucket " << k << " must be rebuilt";
      } else {
        EXPECT_EQ(store.ShardIdentity(family, k), clone.ShardIdentity(family, k))
            << "family " << f << " bucket " << k << " must stay aliased";
      }
    }
  }
}

TEST(CowTest, CloneAnswersAreStableWhileTheOriginalMutates) {
  TripleStore store;
  store.SetShardCount(4);
  BuildRandomGraph(&store, 21);
  TripleStore clone = store.Clone();

  TermId p1 = store.Intern(Iri("p1"));
  auto before_full = ScanImage(clone, kNullTermId, kNullTermId, kNullTermId);
  auto before_pred = ScanImage(clone, kNullTermId, p1, kNullTermId);
  // Pin a live range into the clone's shard: must survive the original's
  // mutation (the shard stays alive via the clone's shared_ptr).
  TripleStore::ScanRange pinned = clone.Scan(kNullTermId, p1, kNullTermId);
  const Triple first = pinned.empty() ? Triple{} : *pinned.begin();

  store.StageAdd(Iri("brand-new"), Iri("p1"), Iri("value"));
  store.StageDelete(clone.triples()[0].s, clone.triples()[0].p,
                    clone.triples()[0].o);
  store.ApplyDelta();

  EXPECT_EQ(ScanImage(clone, kNullTermId, kNullTermId, kNullTermId),
            before_full);
  EXPECT_EQ(ScanImage(clone, kNullTermId, p1, kNullTermId), before_pred);
  if (!pinned.empty()) {
    EXPECT_EQ(*pinned.begin(), first);  // pointer still valid, same bytes
  }
  EXPECT_NE(store.NumTriples(), 0u);
}

TEST(CowTest, CloneSharesTheAppendOnlyDictionary) {
  TripleStore store;
  BuildRandomGraph(&store, 2);
  TripleStore clone = store.Clone();
  size_t before = clone.NumTerms();
  TermId id = store.Intern(Iri("interned-after-clone"));
  // Shared dictionary: the clone sees the new term under the same id...
  EXPECT_EQ(clone.NumTerms(), before + 1);
  EXPECT_EQ(clone.dictionary().term(id), Iri("interned-after-clone"));
  // ...but a DeepClone is severed.
  TripleStore deep = store.DeepClone();
  size_t deep_before = deep.NumTerms();
  store.Intern(Iri("interned-after-deep-clone"));
  EXPECT_EQ(deep.NumTerms(), deep_before);
}

/// Full-pipeline shard invariance: profile, selection, materialization,
/// workload answers, Explain output, and incremental maintenance
/// (including mvm_ blank labels) must be byte-identical at every shard
/// count.
struct PipelineImage {
  std::vector<std::string> triples_after_updates;  // decoded, incl. labels
  std::string explain;
  std::vector<sparql::QueryResult> answers;
  uint64_t publishes = 0;
};

PipelineImage RunPipeline(const std::string& dataset, unsigned shard_count) {
  PipelineImage image;
  core::SofosEngine engine;
  engine.SetShardCount(shard_count);
  testing::SetUpEngine(&engine, dataset);
  EXPECT_EQ(engine.store()->shard_count(),
            static_cast<size_t>(std::max(1u, shard_count)));  // applied at load
  testing::MustProfile(&engine);
  core::TripleCountCostModel model;
  auto selection = engine.SelectViews(model, 3);
  EXPECT_TRUE(selection.ok());
  EXPECT_TRUE(engine.MaterializeSelection(*selection).ok());

  workload::UpdateStreamOptions options;
  options.num_batches = 2;
  options.batch_fraction = 0.03;
  options.delete_fraction = 0.4;
  options.seed = 19;
  auto stream = workload::GenerateUpdateStream(
      engine.base_snapshot(), engine.store()->dictionary(), options);
  EXPECT_TRUE(stream.ok());
  for (const GraphDelta& delta : *stream) {
    auto outcome = engine.ApplyUpdates(delta);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(engine.PublishSnapshot().ok());
  }
  image.publishes = engine.publish_latency().count;

  // Decoded triples (sorted for dictionary-id independence) capture the
  // maintained graph including maintenance blank labels byte-for-byte.
  const Dictionary& dict = engine.store()->dictionary();
  for (const Triple& t : engine.store()->triples()) {
    image.triples_after_updates.push_back(dict.term(t.s).ToNTriples() + " " +
                                          dict.term(t.p).ToNTriples() + " " +
                                          dict.term(t.o).ToNTriples());
  }
  std::sort(image.triples_after_updates.begin(),
            image.triples_after_updates.end());

  std::string root = engine.facet().ViewQuerySparql(engine.facet().FullMask());
  auto explain = engine.ExplainSparql(root);
  EXPECT_TRUE(explain.ok());
  image.explain = explain.ok() ? *explain : "";

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.seed = 31;
  auto queries = generator.Generate(wopts);
  EXPECT_TRUE(queries.ok());
  for (const auto& query : *queries) {
    auto outcome = engine.Answer(query, /*allow_views=*/true);
    EXPECT_TRUE(outcome.ok());
    image.answers.push_back(outcome.ok() ? outcome->result
                                         : sparql::QueryResult{});
  }
  return image;
}

void ExpectPipelineInvariant(const std::string& dataset) {
  PipelineImage reference = RunPipeline(dataset, 1);
  EXPECT_GT(reference.publishes, 0u);
  for (unsigned shards : {2u, 8u}) {
    SCOPED_TRACE(dataset + " shard_count=" + std::to_string(shards));
    PipelineImage image = RunPipeline(dataset, shards);
    // Maintained graph — blank labels included — byte-identical.
    EXPECT_EQ(image.triples_after_updates, reference.triples_after_updates);
    // Plans don't see the shard layout.
    EXPECT_EQ(image.explain, reference.explain);
    ASSERT_EQ(image.answers.size(), reference.answers.size());
    for (size_t i = 0; i < reference.answers.size(); ++i) {
      ExpectSameAnswers(image.answers[i], reference.answers[i],
                        dataset + " query " + std::to_string(i));
    }
  }
}

TEST(ShardPipelineTest, InvariantOnGeopop) { ExpectPipelineInvariant("geopop"); }
TEST(ShardPipelineTest, InvariantOnLubm) { ExpectPipelineInvariant("lubm"); }
TEST(ShardPipelineTest, InvariantOnSwdf) { ExpectPipelineInvariant("swdf"); }

TEST(ShardPipelineTest, AutoShardCountFollowsThreadCount) {
  core::SofosEngine engine;  // shard knob left at 0 = auto
  testing::SetUpEngine(&engine, "geopop");
  engine.SetNumThreads(1);
  EXPECT_EQ(engine.store()->shard_count(), 1u);
  // Growing the pool re-resolves the auto shard count (power of two).
  engine.SetNumThreads(4);
  EXPECT_EQ(engine.store()->shard_count(), 4u);
  engine.SetNumThreads(3);
  EXPECT_EQ(engine.store()->shard_count(), 4u);
  // A pinned knob is left alone by thread changes.
  engine.SetShardCount(2);
  engine.SetNumThreads(8);
  EXPECT_EQ(engine.store()->shard_count(), 2u);
}

TEST(ShardPipelineTest, SnapshotsStayOnTheirEpochAcrossUpdates) {
  core::SofosEngine engine;
  engine.SetShardCount(4);
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap_result, engine.PublishSnapshot());
  std::shared_ptr<const core::EngineSnapshot> old_snap = snap_result;
  std::string root = engine.facet().ViewQuerySparql(engine.facet().FullMask());
  SOFOS_ASSERT_OK_AND_ASSIGN(auto before, old_snap->Answer(root, true));

  workload::UpdateStreamOptions options;
  options.num_batches = 1;
  options.batch_fraction = 0.05;
  options.seed = 5;
  SOFOS_ASSERT_OK_AND_ASSIGN(
      auto stream,
      workload::GenerateUpdateStream(engine.base_snapshot(),
                                     engine.store()->dictionary(), options));
  SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome, engine.ApplyUpdates(stream[0]));
  EXPECT_GT(outcome.adds_applied + outcome.deletes_applied, 0u);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto fresh, engine.PublishSnapshot());
  EXPECT_NE(fresh->epoch(), old_snap->epoch());

  // The old snapshot still answers from its shards — byte-stable even
  // though the engine's store rebuilt the touched ones.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto after, old_snap->Answer(root, true));
  ExpectSameAnswers(before.result, after.result, "old epoch answer");
  // Publishing the same epoch twice builds once (histogram counts builds).
  uint64_t builds = engine.publish_latency().count;
  SOFOS_ASSERT_OK(engine.PublishSnapshot().status());
  EXPECT_EQ(engine.publish_latency().count, builds);
}

}  // namespace
}  // namespace sofos
