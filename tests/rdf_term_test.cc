#include "rdf/term.h"

#include "gtest/gtest.h"
#include "rdf/dictionary.h"
#include "rdf/vocab.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

TEST(TermTest, IriBasics) {
  Term t = Term::Iri("http://example.org/x");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_FALSE(t.is_blank());
  EXPECT_EQ(t.lexical(), "http://example.org/x");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/x>");
  EXPECT_EQ(t.datatype_iri(), "");
}

TEST(TermTest, BlankBasics) {
  Term t = Term::Blank("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b0");
}

TEST(TermTest, StringLiteral) {
  Term t = Term::String("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.datatype(), Term::Datatype::kString);
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
  EXPECT_EQ(t.datatype_iri(), std::string(vocab::kXsdString));
}

TEST(TermTest, StringLiteralEscaping) {
  Term t = Term::String("a\"b\nc");
  EXPECT_EQ(t.ToNTriples(), "\"a\\\"b\\nc\"");
}

TEST(TermTest, LangString) {
  Term t = Term::LangString("bonjour", "fr");
  EXPECT_EQ(t.datatype(), Term::Datatype::kLangString);
  EXPECT_EQ(t.lang(), "fr");
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
}

TEST(TermTest, IntegerLiteral) {
  Term t = Term::Integer(-42);
  EXPECT_TRUE(t.is_numeric());
  EXPECT_EQ(t.lexical(), "-42");
  EXPECT_EQ(t.AsInt64().value(), -42);
  EXPECT_DOUBLE_EQ(t.AsDouble().value(), -42.0);
  EXPECT_EQ(t.ToNTriples(),
            "\"-42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, DoubleLiteral) {
  Term t = Term::Double(2.5);
  EXPECT_TRUE(t.is_numeric());
  EXPECT_DOUBLE_EQ(t.AsDouble().value(), 2.5);
  EXPECT_EQ(t.AsInt64().value(), 2);
}

TEST(TermTest, DoubleLexicalRoundTrip) {
  for (double v : {0.0, -1.5, 3.141592653589793, 1e-9, 12345678.9}) {
    Term t = Term::Double(v);
    EXPECT_DOUBLE_EQ(t.AsDouble().value(), v) << t.lexical();
  }
}

TEST(TermTest, BooleanLiteral) {
  EXPECT_EQ(Term::Boolean(true).lexical(), "true");
  EXPECT_EQ(Term::Boolean(false).lexical(), "false");
  EXPECT_TRUE(Term::Boolean(true).AsBool().value());
  EXPECT_FALSE(Term::Boolean(false).AsBool().value());
}

TEST(TermTest, NumericAccessOnNonNumericFails) {
  EXPECT_FALSE(Term::String("x").AsDouble().ok());
  EXPECT_FALSE(Term::Iri("http://x").AsInt64().ok());
  EXPECT_FALSE(Term::Integer(1).AsBool().ok());
}

TEST(TermTest, TypedLiteralRecognizesNativeTypes) {
  SOFOS_ASSERT_OK_AND_ASSIGN(Term i, Term::TypedLiteral("17", vocab::kXsdInteger));
  EXPECT_EQ(i.datatype(), Term::Datatype::kInteger);
  EXPECT_EQ(i.AsInt64().value(), 17);

  SOFOS_ASSERT_OK_AND_ASSIGN(Term d, Term::TypedLiteral("1.5", vocab::kXsdDouble));
  EXPECT_EQ(d.datatype(), Term::Datatype::kDouble);

  SOFOS_ASSERT_OK_AND_ASSIGN(Term b, Term::TypedLiteral("true", vocab::kXsdBoolean));
  EXPECT_EQ(b.datatype(), Term::Datatype::kBoolean);

  SOFOS_ASSERT_OK_AND_ASSIGN(Term s, Term::TypedLiteral("x", vocab::kXsdString));
  EXPECT_EQ(s.datatype(), Term::Datatype::kString);
}

TEST(TermTest, TypedLiteralValidatesLexicalForms) {
  EXPECT_FALSE(Term::TypedLiteral("not-a-number", vocab::kXsdInteger).ok());
  EXPECT_FALSE(Term::TypedLiteral("1.5.2", vocab::kXsdDouble).ok());
  EXPECT_FALSE(Term::TypedLiteral("maybe", vocab::kXsdBoolean).ok());
}

TEST(TermTest, TypedLiteralKeepsUnknownDatatypes) {
  SOFOS_ASSERT_OK_AND_ASSIGN(
      Term t, Term::TypedLiteral("2021-03-11", "http://www.w3.org/2001/XMLSchema#date"));
  EXPECT_EQ(t.datatype(), Term::Datatype::kOther);
  EXPECT_EQ(t.datatype_iri(), "http://www.w3.org/2001/XMLSchema#date");
  EXPECT_EQ(t.ToNTriples(),
            "\"2021-03-11\"^^<http://www.w3.org/2001/XMLSchema#date>");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_NE(Term::Iri("x"), Term::Blank("x"));
  EXPECT_NE(Term::Iri("x"), Term::String("x"));
  EXPECT_NE(Term::String("1"), Term::Integer(1));
  EXPECT_NE(Term::LangString("a", "en"), Term::LangString("a", "de"));
  EXPECT_EQ(Term::LangString("a", "en"), Term::LangString("a", "en"));
}

TEST(TermTest, HashConsistentWithEquality) {
  EXPECT_EQ(Term::Integer(5).Hash(), Term::Integer(5).Hash());
  EXPECT_NE(Term::Integer(5).Hash(), Term::String("5").Hash());
  EXPECT_NE(Term::Iri("a").Hash(), Term::Blank("a").Hash());
}

TEST(TermTest, TotalOrderIsStrict) {
  Term a = Term::Iri("a"), b = Term::Iri("b");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(FormatDoubleLexicalTest, SpecialValues) {
  EXPECT_EQ(FormatDoubleLexical(1.0), "1");
  EXPECT_EQ(FormatDoubleLexical(-0.5), "-0.5");
}

// ------------------------------------------------------------ Dictionary

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("x"));
  TermId b = dict.Intern(Term::Iri("x"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, IdsStartAtOne) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern(Term::Iri("first")), 1u);
  EXPECT_EQ(dict.Intern(Term::Iri("second")), 2u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term original = Term::LangString("ciao", "it");
  TermId id = dict.Intern(original);
  EXPECT_EQ(dict.term(id), original);
}

TEST(DictionaryTest, LookupWithoutIntern) {
  Dictionary dict;
  dict.Intern(Term::Integer(1));
  EXPECT_TRUE(dict.Lookup(Term::Integer(1)).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Integer(2)).has_value());
}

TEST(DictionaryTest, DistinguishesLiteralKinds) {
  Dictionary dict;
  TermId s = dict.Intern(Term::String("42"));
  TermId i = dict.Intern(Term::Integer(42));
  EXPECT_NE(s, i);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, ManyTermsStableIds) {
  Dictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(dict.Intern(Term::Integer(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.term(ids[static_cast<size_t>(i)]).AsInt64().value(), i);
  }
  EXPECT_GT(dict.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace sofos
