#include "datagen/registry.h"

#include "core/facet.h"
#include "gtest/gtest.h"
#include "rdf/vocab.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace datagen {
namespace {

TEST(RegistryTest, ListsThreeDatasets) {
  auto names = DatasetNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "lubm");
  EXPECT_EQ(names[1], "geopop");
  EXPECT_EQ(names[2], "swdf");
}

TEST(RegistryTest, ScaleParsing) {
  EXPECT_TRUE(ParseScale("tiny").ok());
  EXPECT_TRUE(ParseScale("demo").ok());
  EXPECT_TRUE(ParseScale("full").ok());
  EXPECT_FALSE(ParseScale("huge").ok());
  EXPECT_EQ(ScaleName(Scale::kDemo), "demo");
}

TEST(RegistryTest, UnknownDatasetErrors) {
  TripleStore store;
  EXPECT_FALSE(GenerateByName("nope", Scale::kTiny, 1, &store).ok());
}

/// Shared structural checks for every dataset at every scale.
class DatasetParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(DatasetParamTest, GeneratesWellFormedDatasetAndFacet) {
  const auto& [name, scale_name] = GetParam();
  auto scale = ParseScale(scale_name);
  ASSERT_TRUE(scale.ok());

  TripleStore store;
  auto spec = GenerateByName(name, *scale, 42, &store);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, name);
  EXPECT_TRUE(store.finalized());
  EXPECT_GT(store.NumTriples(), 100u);
  EXPECT_GT(store.NumNodes(), 10u);
  EXPECT_EQ(spec->dim_vars.size(), 4u);
  EXPECT_EQ(spec->dim_labels.size(), spec->dim_vars.size());

  // The facet template must parse into a 4-dim facet.
  auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                       spec->dim_labels);
  ASSERT_TRUE(facet.ok()) << facet.status().ToString();
  EXPECT_EQ(facet->num_dims(), 4u);
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(facet->dims()[d].var, spec->dim_vars[d]);
  }

  // The facet's root view query must execute and produce rows.
  sparql::QueryEngine engine(&store);
  auto result = engine.Execute(facet->ViewQuerySparql(facet->FullMask()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->NumRows(), 0u);
}

TEST_P(DatasetParamTest, GenerationIsDeterministic) {
  const auto& [name, scale_name] = GetParam();
  if (scale_name != "tiny") GTEST_SKIP() << "determinism checked at tiny scale";
  TripleStore a, b;
  ASSERT_TRUE(GenerateByName(name, Scale::kTiny, 123, &a).ok());
  ASSERT_TRUE(GenerateByName(name, Scale::kTiny, 123, &b).ok());
  EXPECT_EQ(a.NumTriples(), b.NumTriples());
  EXPECT_EQ(a.NumTerms(), b.NumTerms());
  EXPECT_EQ(a.triples(), b.triples());

  TripleStore c;
  ASSERT_TRUE(GenerateByName(name, Scale::kTiny, 124, &c).ok());
  EXPECT_NE(a.triples(), c.triples()) << "different seeds must differ";
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetParamTest,
    ::testing::Values(std::make_tuple("lubm", "tiny"),
                      std::make_tuple("lubm", "demo"),
                      std::make_tuple("geopop", "tiny"),
                      std::make_tuple("geopop", "demo"),
                      std::make_tuple("swdf", "tiny"),
                      std::make_tuple("swdf", "demo")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(GeoPopTest, ObservationsCarryAllFacetEdges) {
  TripleStore store;
  auto spec = GenerateByName("geopop", Scale::kTiny, 1, &store);
  ASSERT_TRUE(spec.ok());
  const Dictionary& dict = store.dictionary();
  auto pred = [&](const std::string& local) {
    auto id = dict.Lookup(Term::Iri("http://sofos.example.org/geo#" + local));
    EXPECT_TRUE(id.has_value()) << local;
    return id.value_or(kNullTermId);
  };
  uint64_t countries = store.Count(kNullTermId, pred("country"), kNullTermId);
  uint64_t languages = store.Count(kNullTermId, pred("language"), kNullTermId);
  uint64_t years = store.Count(kNullTermId, pred("year"), kNullTermId);
  uint64_t pops = store.Count(kNullTermId, pred("population"), kNullTermId);
  EXPECT_EQ(countries, languages);
  EXPECT_EQ(countries, years);
  EXPECT_EQ(countries, pops);
  EXPECT_GT(countries, 0u);
}

TEST(GeoPopTest, EveryCountryHasOneContinent) {
  TripleStore store;
  auto spec = GenerateByName("geopop", Scale::kTiny, 2, &store);
  ASSERT_TRUE(spec.ok());
  sparql::QueryEngine engine(&store);
  auto result = engine.Execute(
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?c (COUNT(?cont) AS ?n) WHERE { ?c geo:partOf ?cont } GROUP BY ?c "
      "HAVING (COUNT(?cont) > 1)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 0u) << "no country may sit in two continents";
}

TEST(LubmTest, RegistrationsJoinThroughAllFacetHops) {
  TripleStore store;
  auto spec = GenerateByName("lubm", Scale::kTiny, 3, &store);
  ASSERT_TRUE(spec.ok());
  sparql::QueryEngine engine(&store);
  // Every takesCourse registration reaches a university through the chain.
  auto regs = engine.Execute(
      "PREFIX lubm: <http://sofos.example.org/lubm#>\n"
      "SELECT (COUNT(?course) AS ?n) WHERE { ?s lubm:takesCourse ?course }");
  auto joined = engine.Execute(
      "PREFIX lubm: <http://sofos.example.org/lubm#>\n"
      "SELECT (COUNT(?course) AS ?n) WHERE {\n"
      "  ?s lubm:takesCourse ?course .\n"
      "  ?course lubm:offeredBy ?d .\n"
      "  ?d lubm:subOrganizationOf ?u }");
  ASSERT_TRUE(regs.ok() && joined.ok());
  EXPECT_EQ(regs->rows[0][0].AsInt64().value(),
            joined->rows[0][0].AsInt64().value());
}

TEST(LubmTest, CourseLevelsAreBinary) {
  TripleStore store;
  auto spec = GenerateByName("lubm", Scale::kTiny, 4, &store);
  ASSERT_TRUE(spec.ok());
  sparql::QueryEngine engine(&store);
  auto result = engine.Execute(
      "PREFIX lubm: <http://sofos.example.org/lubm#>\n"
      "SELECT DISTINCT ?level WHERE { ?c lubm:courseLevel ?level }");
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->NumRows(), 2u);
  EXPECT_GE(result->NumRows(), 1u);
}

TEST(SwdfTest, PapersHaveAtLeastOneAuthor) {
  TripleStore store;
  auto spec = GenerateByName("swdf", Scale::kTiny, 5, &store);
  ASSERT_TRUE(spec.ok());
  sparql::QueryEngine engine(&store);
  auto papers = engine.Execute(
      "PREFIX swdf: <http://sofos.example.org/swdf#>\n"
      "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?p swdf:inTrack ?t }");
  auto with_authors = engine.Execute(
      "PREFIX swdf: <http://sofos.example.org/swdf#>\n"
      "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?p swdf:creator ?a }");
  ASSERT_TRUE(papers.ok() && with_authors.ok());
  EXPECT_EQ(papers->rows[0][0].AsInt64().value(),
            with_authors->rows[0][0].AsInt64().value());
}

TEST(SwdfTest, EditionYearsInConfiguredRange) {
  TripleStore store;
  auto spec = GenerateByName("swdf", Scale::kTiny, 6, &store);
  ASSERT_TRUE(spec.ok());
  sparql::QueryEngine engine(&store);
  auto result = engine.Execute(
      "PREFIX swdf: <http://sofos.example.org/swdf#>\n"
      "SELECT (MIN(?y) AS ?lo) (MAX(?y) AS ?hi) WHERE { ?e swdf:year ?y }");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows[0][0].AsInt64().value(), 2015);
  EXPECT_LE(result->rows[0][1].AsInt64().value(), 2017);
}

}  // namespace
}  // namespace datagen
}  // namespace sofos
