/// Tests for the concurrency layer (common/thread_pool.h, common/parallel.h)
/// and the determinism contract of the parallel offline pipeline and the
/// batched workload runner: every engine result with N threads must equal
/// the num_threads=1 run (timing fields excepted).

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "rdf/dictionary.h"
#include "tests/core_test_util.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using core::SofosEngine;
using testing::ExpectSameAnswers;
using testing::SetUpEngine;

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitFromInsideTask) {
  ThreadPool pool(2);
  auto outer = pool.Submit([&pool] {
    // Fire-and-forget style nested submission must not deadlock as long as
    // the outer task does not block on the inner one.
    return pool.Submit([] { return 7; });
  });
  EXPECT_EQ(outer.get().get(), 7);
}

TEST(ParallelTest, ChunkIndexRangesCoverExactly) {
  for (size_t n : {0u, 1u, 2u, 7u, 16u, 61u}) {
    for (size_t chunks : {1u, 2u, 5u, 100u}) {
      auto ranges = ChunkIndexRanges(n, chunks);
      size_t covered = 0;
      size_t expect_begin = 0;
      for (const IndexRange& range : ranges) {
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_GT(range.end, range.begin);  // never empty
        covered += range.size();
        expect_begin = range.end;
      }
      EXPECT_EQ(covered, n);
      if (n > 0) EXPECT_LE(ranges.size(), std::min(n, chunks));
    }
  }
}

TEST(ParallelTest, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelTest, ParallelForEachTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 333;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelForEach(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  order.clear();
  ParallelForEach(nullptr, 10, [&](size_t i) { order.push_back(i); });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

/// Hammers Dictionary::Intern from many tasks with heavily overlapping term
/// sets while readers decode concurrently — the exact shape of parallel
/// aggregate-literal interning during batched query execution.
TEST(DictionaryTest, ConcurrentInternIsRaceFree) {
  Dictionary dict;
  // Pre-intern a base vocabulary, as the store does before execution.
  for (int i = 0; i < 50; ++i) {
    dict.Intern(Term::Integer(i));
  }
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  constexpr int kTermsPerTask = 200;
  std::vector<std::vector<TermId>> ids(kTasks);
  ParallelForEach(&pool, kTasks, [&](size_t t) {
    for (int i = 0; i < kTermsPerTask; ++i) {
      // Overlapping ranges: every value is interned by several tasks.
      int value = (static_cast<int>(t) * 37 + i) % 300;
      Term term = Term::Integer(value);
      TermId id = dict.Intern(term);
      ids[t].push_back(id);
      // Concurrent read-back while other tasks intern.
      EXPECT_EQ(dict.term(id), term);
      EXPECT_EQ(dict.Lookup(term).value_or(kNullTermId), id);
    }
  });
  // Same term ⇒ same id across all tasks.
  std::set<TermId> distinct;
  for (int t = 0; t < kTasks; ++t) {
    for (int i = 0; i < kTermsPerTask; ++i) {
      int value = (t * 37 + i) % 300;
      EXPECT_EQ(ids[t][i], dict.Lookup(Term::Integer(value)).value())
          << "task " << t << " item " << i;
      distinct.insert(ids[t][i]);
    }
  }
  EXPECT_EQ(distinct.size(), 300u);
  EXPECT_EQ(dict.size(), 300u);  // 0..49 pre-interned ⊂ 0..299
}

void ExpectSameViewStats(const core::LatticeProfile& a,
                         const core::LatticeProfile& b,
                         const std::string& context) {
  ASSERT_EQ(a.views.size(), b.views.size()) << context;
  EXPECT_EQ(a.base_triples, b.base_triples) << context;
  EXPECT_EQ(a.base_nodes, b.base_nodes) << context;
  EXPECT_EQ(a.base_pattern_rows, b.base_pattern_rows) << context;
  for (size_t mask = 0; mask < a.views.size(); ++mask) {
    const core::ViewStats& va = a.views[mask];
    const core::ViewStats& vb = b.views[mask];
    EXPECT_EQ(va.mask, vb.mask) << context << " mask " << mask;
    EXPECT_EQ(va.result_rows, vb.result_rows) << context << " mask " << mask;
    EXPECT_EQ(va.encoded_triples, vb.encoded_triples)
        << context << " mask " << mask;
    EXPECT_EQ(va.encoded_nodes, vb.encoded_nodes)
        << context << " mask " << mask;
    EXPECT_EQ(va.encoded_bytes, vb.encoded_bytes)
        << context << " mask " << mask;
    EXPECT_EQ(va.estimated, vb.estimated) << context << " mask " << mask;
    // eval_micros is timing metadata and legitimately differs.
  }
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelEquivalenceTest, ProfileMatchesSerial) {
  const std::string dataset = GetParam();
  for (core::ProfileMode mode :
       {core::ProfileMode::kExact, core::ProfileMode::kSampled}) {
    SofosEngine serial_engine;
    SetUpEngine(&serial_engine, dataset);
    serial_engine.SetNumThreads(1);
    core::ProfileOptions options;
    options.mode = mode;
    auto serial = serial_engine.Profile(options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    SofosEngine parallel_engine;
    SetUpEngine(&parallel_engine, dataset);
    parallel_engine.SetNumThreads(4);
    EXPECT_EQ(parallel_engine.num_threads(), 4u);
    auto parallel = parallel_engine.Profile(options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    ExpectSameViewStats(
        **serial, **parallel,
        dataset + (mode == core::ProfileMode::kExact ? "/exact" : "/sampled"));
  }
}

TEST_P(ParallelEquivalenceTest, SelectViewsMatchesSerial) {
  const std::string dataset = GetParam();
  SofosEngine serial_engine;
  SetUpEngine(&serial_engine, dataset);
  serial_engine.SetNumThreads(1);
  SOFOS_ASSERT_OK(serial_engine.Profile().status());

  SofosEngine parallel_engine;
  SetUpEngine(&parallel_engine, dataset);
  parallel_engine.SetNumThreads(4);
  SOFOS_ASSERT_OK(parallel_engine.Profile().status());

  for (core::CostModelKind kind :
       {core::CostModelKind::kRandom, core::CostModelKind::kTripleCount,
        core::CostModelKind::kAggValueCount, core::CostModelKind::kNodeCount}) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto serial_model, serial_engine.MakeModel(kind));
    SOFOS_ASSERT_OK_AND_ASSIGN(auto parallel_model,
                               parallel_engine.MakeModel(kind));
    for (size_t k : {1u, 3u, 7u}) {
      SOFOS_ASSERT_OK_AND_ASSIGN(auto serial_sel,
                                 serial_engine.SelectViews(*serial_model, k));
      SOFOS_ASSERT_OK_AND_ASSIGN(
          auto parallel_sel, parallel_engine.SelectViews(*parallel_model, k));
      const std::string context = dataset + "/" + serial_model->name() +
                                  "/k=" + std::to_string(k);
      EXPECT_EQ(serial_sel.views, parallel_sel.views) << context;
      // Bit-identical benefits, not just approximately equal: the parallel
      // reduction must replay the serial argmax exactly.
      ASSERT_EQ(serial_sel.benefits.size(), parallel_sel.benefits.size())
          << context;
      for (size_t i = 0; i < serial_sel.benefits.size(); ++i) {
        EXPECT_EQ(serial_sel.benefits[i], parallel_sel.benefits[i])
            << context << " pick " << i;
      }
    }
  }
}

TEST_P(ParallelEquivalenceTest, RunWorkloadMatchesSerial) {
  const std::string dataset = GetParam();

  auto run = [&](unsigned num_threads) -> core::WorkloadReport {
    SofosEngine engine;
    SetUpEngine(&engine, dataset);
    engine.SetNumThreads(num_threads);
    EXPECT_TRUE(engine.Profile().ok());
    auto model = engine.MakeModel(core::CostModelKind::kTripleCount);
    EXPECT_TRUE(model.ok());
    auto selection = engine.SelectViews(**model, 3);
    EXPECT_TRUE(selection.ok());
    EXPECT_TRUE(engine.MaterializeSelection(*selection).ok());

    workload::WorkloadGenerator generator(&engine.facet(), engine.store());
    workload::WorkloadOptions options;
    options.num_queries = 12;
    options.seed = 11;
    auto queries = generator.Generate(options);
    EXPECT_TRUE(queries.ok());
    auto report = engine.RunWorkload(*queries, /*allow_views=*/true);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  };

  core::WorkloadReport serial = run(1);
  core::WorkloadReport parallel = run(4);

  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  EXPECT_EQ(serial.view_hits, parallel.view_hits);
  EXPECT_EQ(serial.total_rows_scanned, parallel.total_rows_scanned);
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    const core::QueryOutcome& a = serial.outcomes[i];
    const core::QueryOutcome& b = parallel.outcomes[i];
    // Stable merge order: outcome i corresponds to input query i.
    EXPECT_EQ(a.query_id, b.query_id) << i;
    EXPECT_EQ(a.used_view, b.used_view) << i;
    EXPECT_EQ(a.view_mask, b.view_mask) << i;
    EXPECT_EQ(a.executed_sparql, b.executed_sparql) << i;
    EXPECT_EQ(a.rows_scanned, b.rows_scanned) << i;
    EXPECT_EQ(a.result_rows, b.result_rows) << i;
    ExpectSameAnswers(a.result, b.result,
                      dataset + " outcome " + std::to_string(i));
  }
  // Wall vs. aggregate CPU are reported separately and both populated.
  EXPECT_GT(serial.wall_micros, 0.0);
  EXPECT_GT(parallel.wall_micros, 0.0);
  EXPECT_GT(parallel.total_micros, 0.0);
  EXPECT_NE(serial.Summary().find("wall="), std::string::npos);
  EXPECT_NE(serial.Summary().find("cpu="), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Datasets, ParallelEquivalenceTest,
                         ::testing::Values("swdf", "lubm"));

}  // namespace
}  // namespace sofos
