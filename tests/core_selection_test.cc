#include "core/selection.h"

#include <set>

#include "gtest/gtest.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace core {
namespace {

using testing::MustProfile;
using testing::SetUpEngine;

class SelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetUpEngine(&engine_, "geopop");
    MustProfile(&engine_);
  }

  SofosEngine engine_;
};

TEST_F(SelectionTest, GreedyPicksExactlyK) {
  TripleCountCostModel model;
  auto selection = engine_.SelectViews(model, 4);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->views.size(), 4u);
  EXPECT_EQ(selection->benefits.size(), 4u);
  // All picks distinct.
  std::set<uint32_t> unique(selection->views.begin(), selection->views.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST_F(SelectionTest, GreedyBenefitsAreNonIncreasing) {
  TripleCountCostModel model;
  auto selection = engine_.SelectViews(model, 6);
  ASSERT_TRUE(selection.ok());
  for (size_t i = 1; i < selection->benefits.size(); ++i) {
    EXPECT_LE(selection->benefits[i], selection->benefits[i - 1] + 1e-9)
        << "greedy benefit must shrink monotonically (submodularity)";
  }
}

TEST_F(SelectionTest, FirstGreedyPickIsHighCoverage) {
  // Under triple-count with uniform weights, the first pick must answer
  // many lattice nodes cheaply; the apex (answers only itself) can never
  // beat the root-like views on a lattice where base cost dominates.
  TripleCountCostModel model;
  auto selection = engine_.SelectViews(model, 1);
  ASSERT_TRUE(selection.ok());
  ASSERT_EQ(selection->views.size(), 1u);
  EXPECT_GT(Lattice::Level(selection->views[0]), 1)
      << "first pick was " << engine_.facet().MaskLabel(selection->views[0]);
}

TEST_F(SelectionTest, KLargerThanLatticeSelectsAll) {
  TripleCountCostModel model;
  auto selection = engine_.SelectViews(model, 100);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->views.size(), 16u);
}

TEST_F(SelectionTest, RandomModelGivesSeededRandomSubset) {
  RandomCostModel model;
  auto a = engine_.SelectViews(model, 4, nullptr, /*seed=*/1);
  auto b = engine_.SelectViews(model, 4, nullptr, /*seed=*/1);
  auto c = engine_.SelectViews(model, 4, nullptr, /*seed=*/2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->views, b->views) << "same seed must reproduce the selection";
  EXPECT_NE(a->views, c->views) << "different seeds should differ (16 choose 4)";
  std::set<uint32_t> unique(a->views.begin(), a->views.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST_F(SelectionTest, DeterministicAcrossRuns) {
  AggValueCountCostModel model;
  auto a = engine_.SelectViews(model, 5);
  auto b = engine_.SelectViews(model, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->views, b->views);
}

TEST_F(SelectionTest, WorkloadAwareWeightsChangeSelection) {
  TripleCountCostModel model;
  // All query mass on the apex: selecting the apex view first becomes
  // optimal even though it answers nothing else.
  QueryWeights weights(16, 0.0);
  weights[0] = 1.0;
  auto selection = engine_.SelectViews(model, 1, &weights);
  ASSERT_TRUE(selection.ok());
  ASSERT_EQ(selection->views.size(), 1u);
  EXPECT_EQ(selection->views[0], 0u)
      << "picked " << engine_.facet().MaskLabel(selection->views[0]);
}

TEST_F(SelectionTest, ByteBudgetIsRespected) {
  TripleCountCostModel model;
  const LatticeProfile* profile = engine_.profile();
  Lattice lattice(&engine_.facet());
  GreedySelector selector(&lattice, profile, &model);

  // Budget for roughly the two smallest views.
  uint64_t budget = profile->ForMask(0).encoded_bytes +
                    profile->ForMask(0b0001).encoded_bytes + 16;
  auto selection = selector.SelectWithinBytes(budget);
  uint64_t used = 0;
  for (uint32_t mask : selection.views) {
    used += profile->ForMask(mask).encoded_bytes;
  }
  EXPECT_LE(used, budget);
  EXPECT_GE(selection.views.size(), 1u);
  EXPECT_LT(selection.views.size(), 16u);
}

TEST_F(SelectionTest, UserSelectionPassesThrough) {
  auto selection = UserSelection({0b0011, 0b1100});
  EXPECT_EQ(selection.model_name, "user");
  ASSERT_EQ(selection.views.size(), 2u);
  EXPECT_TRUE(selection.Contains(0b0011));
  EXPECT_FALSE(selection.Contains(0b1111));
}

TEST_F(SelectionTest, SelectionToStringNamesViews) {
  TripleCountCostModel model;
  auto selection = engine_.SelectViews(model, 2);
  ASSERT_TRUE(selection.ok());
  std::string text = selection->ToString(engine_.facet());
  EXPECT_NE(text.find("triples"), std::string::npos);
  EXPECT_NE(text.find("{"), std::string::npos);
}

// ---------------------------------------------------------------- oracle

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    facet_ = std::move(Facet::FromSparql(
                           "SELECT ?a ?b (SUM(?v) AS ?agg) WHERE { ?x <http://a> ?a . "
                           "?x <http://b> ?b . ?x <http://v> ?v } GROUP BY ?a ?b",
                           "tiny")
                           .value());
    lattice_.emplace(&facet_);
  }

  /// answer_cost[w][v] matrices for a 2-dim lattice (4 views + base col).
  Facet facet_;
  std::optional<Lattice> lattice_;
};

TEST_F(OracleTest, PicksTheObviousBestView) {
  // Answering anything from view 3 (full) costs 1; base costs 100; other
  // views cost 50. The best single view is clearly the full view.
  std::vector<std::vector<double>> cost(4, std::vector<double>(5, 50.0));
  for (uint32_t w = 0; w < 4; ++w) {
    cost[w][4] = 100.0;  // base
    cost[w][3] = 1.0;    // full view
  }
  auto result = OracleSelection(*lattice_, 1, cost);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->views.size(), 1u);
  EXPECT_EQ(result->views[0], 3u);
}

TEST_F(OracleTest, RespectsAnswerability) {
  // View 1 = {a} is extremely cheap but cannot answer queries needing b.
  std::vector<std::vector<double>> cost(4, std::vector<double>(5, 10.0));
  for (uint32_t w = 0; w < 4; ++w) cost[w][4] = 100.0;
  cost[1][1] = 0.001;
  // With k=1 the oracle must still pick a view that helps overall; view 1
  // only answers w ∈ {0, 1}, leaving w ∈ {2, 3} at base cost 100 each.
  // Score(view 1) = (0.001 + 0.001 + 100 + 100)/4 > Score(view 3) =
  // (10+10+10+10)/4.
  auto result = OracleSelection(*lattice_, 1, cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views[0], 3u);
}

TEST_F(OracleTest, KZeroYieldsEmptySelection) {
  std::vector<std::vector<double>> cost(4, std::vector<double>(5, 1.0));
  auto result = OracleSelection(*lattice_, 0, cost);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->views.empty());
}

TEST_F(OracleTest, RejectsMalformedMatrix) {
  std::vector<std::vector<double>> bad_rows(3, std::vector<double>(5, 1.0));
  EXPECT_FALSE(OracleSelection(*lattice_, 1, bad_rows).ok());
  std::vector<std::vector<double>> bad_cols(4, std::vector<double>(4, 1.0));
  EXPECT_FALSE(OracleSelection(*lattice_, 1, bad_cols).ok());
}

TEST_F(OracleTest, OracleAtLeastAsGoodAsAnySingleView) {
  // Random-ish cost matrix; the oracle's k=2 score must be <= the score of
  // every 2-subset we can think of (spot check a few).
  std::vector<std::vector<double>> cost(4, std::vector<double>(5));
  double v = 1.0;
  for (auto& row : cost) {
    for (auto& cell : row) cell = (v = v * 1.7 + 3.0, v > 80 ? v - 70 : v);
    row[4] = 90.0;
  }
  auto oracle = OracleSelection(*lattice_, 2, cost);
  ASSERT_TRUE(oracle.ok());
  double oracle_score = oracle->benefits[0];

  auto score_of = [&](std::vector<uint32_t> views) {
    double score = 0;
    for (uint32_t w = 0; w < 4; ++w) {
      double cheapest = cost[w][4];
      for (uint32_t view : views) {
        if (Lattice::CanAnswer(view, w)) {
          cheapest = std::min(cheapest, cost[w][view]);
        }
      }
      score += 0.25 * cheapest;
    }
    return score;
  };
  EXPECT_LE(oracle_score, score_of({0, 1}) + 1e-9);
  EXPECT_LE(oracle_score, score_of({1, 2}) + 1e-9);
  EXPECT_LE(oracle_score, score_of({2, 3}) + 1e-9);
  EXPECT_LE(oracle_score, score_of({0, 3}) + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace sofos
