/// Vectorized-executor test suite (CTest label `exec`, also run under the
/// TSan lane): batch-boundary edge cases, selection-vector behavior, the
/// exchange operator's determinism contract, and byte-identity of the batch
/// engine — serial and morsel-parallel at 1/2/4 threads — against the
/// legacy row-at-a-time Volcano executor on every bundled dataset,
/// including through ApplyUpdates maintenance.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/planner.h"
#include "sparql/query_engine.h"
#include "tests/core_test_util.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using sparql::ExecMode;
using sparql::ExecOptions;
using sparql::QueryEngine;
using sparql::QueryResult;

/// Exact comparison: same column names, same rows in the same order, same
/// bound flags — the byte-identity contract (no canonical sorting).
void ExpectByteIdentical(const QueryResult& a, const QueryResult& b,
                         const std::string& context) {
  ASSERT_EQ(a.var_names, b.var_names) << context;
  ASSERT_EQ(a.NumRows(), b.NumRows()) << context;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.bound[r], b.bound[r]) << context << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!a.bound[r][c]) continue;
      ASSERT_EQ(a.rows[r][c], b.rows[r][c])
          << context << " row " << r << " col " << c << ": "
          << a.rows[r][c].ToNTriples() << " vs " << b.rows[r][c].ToNTriples();
    }
  }
}

QueryResult MustRun(TripleStore* store, const std::string& sparql,
                    const ExecOptions& options) {
  QueryEngine engine(store, options);
  auto result = engine.Execute(sparql);
  EXPECT_TRUE(result.ok()) << sparql << ": " << result.status().ToString();
  return result.ok() ? std::move(result).value() : QueryResult{};
}

ExecOptions Volcano() {
  ExecOptions options;
  options.mode = ExecMode::kVolcano;
  return options;
}

/// Batch options with aggressive morsel splitting so even tiny stores
/// exercise the exchange at several threads.
ExecOptions Parallel(ThreadPool* pool, unsigned dop, size_t batch_size = 1024) {
  ExecOptions options;
  options.pool = pool;
  options.dop = dop;
  options.batch_size = batch_size;
  options.morsel_rows = 4;
  return options;
}

/// Queries covering every operator: scans, index joins, cross products,
/// repeated variables, filters (early and late), aggregation with HAVING,
/// DISTINCT, ORDER BY, OFFSET/LIMIT, expression projection, unbound vars.
const char* kFigure1Queries[] = {
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
    "SELECT ?c WHERE { ?c <http://example.org/language> \"French\" }",
    "SELECT ?c ?l ?p WHERE { ?c <http://example.org/language> ?l . "
    "?c <http://example.org/population> ?p }",
    "SELECT ?c ?y WHERE { ?c <http://example.org/population> ?p . "
    "?p <http://example.org/year> ?y }",
    // Cross product (disconnected patterns).
    "SELECT ?a ?b WHERE { ?a <http://example.org/language> \"French\" . "
    "?b <http://example.org/language> \"German\" }",
    // Repeated variable inside one pattern.
    "SELECT ?x WHERE { ?x ?p ?x }",
    // Filters at different pipeline depths.
    "SELECT ?c ?l WHERE { ?c <http://example.org/language> ?l . "
    "FILTER(?l != \"French\") }",
    "SELECT ?c WHERE { ?c <http://example.org/language> ?l . "
    "?c <http://example.org/partOf> ?r . FILTER(?r = <http://example.org/EU>) "
    "FILTER(?l = \"French\") }",
    // All rows filtered out.
    "SELECT ?c WHERE { ?c <http://example.org/language> ?l . "
    "FILTER(?l = \"Klingon\") }",
    // Aggregation: grouped, HAVING, ordered, sliced.
    "SELECT ?l (COUNT(?c) AS ?n) WHERE { ?c <http://example.org/language> ?l } "
    "GROUP BY ?l",
    "SELECT ?r (COUNT(?c) AS ?n) (MIN(?l) AS ?m) WHERE { "
    "?c <http://example.org/partOf> ?r . ?c <http://example.org/language> ?l } "
    "GROUP BY ?r HAVING (COUNT(?c) > 1) ORDER BY DESC(?n)",
    // Aggregate over empty input: still one COUNT = 0 group.
    "SELECT (COUNT(?c) AS ?n) WHERE { ?c <http://example.org/language> "
    "\"Klingon\" }",
    // Constant absent from the dictionary: empty-guaranteed plan.
    "SELECT (COUNT(?c) AS ?n) WHERE { ?c <http://example.org/never_seen> ?x }",
    "SELECT DISTINCT ?r WHERE { ?c <http://example.org/partOf> ?r }",
    "SELECT ?c WHERE { ?c <http://example.org/language> ?l } "
    "ORDER BY ?l ?c LIMIT 3 OFFSET 1",
    // LIMIT without ORDER BY: stream-order slice (early pipeline exit).
    "SELECT ?s WHERE { ?s ?p ?o } LIMIT 2",
    // Expression projection and unknown projected variable.
    "SELECT ?c (?y + 1 AS ?next) ?ghost WHERE { "
    "?p2 <http://example.org/year> ?y . ?c <http://example.org/population> ?p2 }",
};

class Figure1ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::BuildFigure1Graph(&store_);
    store_.Finalize();
  }
  TripleStore store_;
};

TEST_F(Figure1ExecTest, BatchSerialByteIdenticalToVolcano) {
  for (const char* q : kFigure1Queries) {
    QueryResult reference = MustRun(&store_, q, Volcano());
    QueryResult batch = MustRun(&store_, q, ExecOptions{});
    ExpectByteIdentical(reference, batch, std::string("serial batch: ") + q);
  }
}

TEST_F(Figure1ExecTest, BatchBoundaryEdgeCases) {
  // Batch size 1, a size matching the row count exactly, one bigger and one
  // smaller: boundaries must never change results.
  const size_t total_rows = store_.NumTriples();
  for (size_t batch_size :
       {size_t{1}, size_t{2}, total_rows, total_rows + 1, size_t{7}}) {
    for (const char* q : kFigure1Queries) {
      QueryResult reference = MustRun(&store_, q, Volcano());
      ExecOptions options;
      options.batch_size = batch_size;
      QueryResult batch = MustRun(&store_, q, options);
      ExpectByteIdentical(reference, batch,
                          "batch_size=" + std::to_string(batch_size) + ": " + q);
    }
  }
}

TEST_F(Figure1ExecTest, ParallelExchangeByteIdentical) {
  ThreadPool pool(4);
  for (unsigned dop : {2u, 4u}) {
    for (const char* q : kFigure1Queries) {
      QueryResult reference = MustRun(&store_, q, Volcano());
      QueryResult parallel = MustRun(&store_, q, Parallel(&pool, dop));
      ExpectByteIdentical(reference, parallel,
                          "dop=" + std::to_string(dop) + ": " + q);
    }
  }
}

TEST_F(Figure1ExecTest, ParallelBatchSizeOne) {
  // The nastiest boundary combination: one-row batches through the exchange.
  ThreadPool pool(2);
  for (const char* q : kFigure1Queries) {
    QueryResult reference = MustRun(&store_, q, Volcano());
    QueryResult parallel =
        MustRun(&store_, q, Parallel(&pool, 2, /*batch_size=*/1));
    ExpectByteIdentical(reference, parallel, std::string("dop=2 bs=1: ") + q);
  }
}

TEST_F(Figure1ExecTest, EmptyStore) {
  TripleStore empty;
  empty.Finalize();
  // Intern a term so the pattern constant resolves but matches nothing.
  (void)empty.Intern(Term::Iri("http://example.org/language"));
  empty.Finalize();
  for (const char* q :
       {"SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
        "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }"}) {
    QueryResult reference = MustRun(&empty, q, Volcano());
    QueryResult batch = MustRun(&empty, q, ExecOptions{});
    ExpectByteIdentical(reference, batch, std::string("empty store: ") + q);
  }
}

TEST_F(Figure1ExecTest, StatsMatchAcrossModesAndThreads) {
  const char* q =
      "SELECT ?r (COUNT(?c) AS ?n) WHERE { ?c <http://example.org/partOf> ?r . "
      "?c <http://example.org/language> ?l . FILTER(?l != \"German\") } "
      "GROUP BY ?r";
  QueryEngine reference_engine(&store_, Volcano());
  auto reference = reference_engine.Execute(q);
  ASSERT_TRUE(reference.ok());

  ThreadPool pool(4);
  for (const ExecOptions& options :
       {ExecOptions{}, Parallel(&pool, 2), Parallel(&pool, 4)}) {
    QueryEngine engine(&store_, options);
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok());
    // Row counters are mode- and thread-count-invariant for fully drained
    // queries (this plan has no hash joins, so no extra build-side scan).
    EXPECT_EQ(result->stats.rows_scanned, reference->stats.rows_scanned);
    EXPECT_EQ(result->stats.intermediate_rows,
              reference->stats.intermediate_rows);
    EXPECT_EQ(result->stats.filtered_rows, reference->stats.filtered_rows);
    EXPECT_EQ(result->stats.output_rows, reference->stats.output_rows);
    // The wall/CPU split: both populated, CPU ≈ wall when serial.
    EXPECT_GT(result->stats.exec_micros, 0.0);
    EXPECT_GT(result->stats.cpu_micros, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Hash-join coverage: a synthetic store large enough to trip the planner's
// hash-probe thresholds (leading scan >= kHashProbeMinRows).
// ---------------------------------------------------------------------------

class HashJoinExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Shaped like the facet patterns the planner sees: a tiny anchor
    // pattern (groupLabel, one triple per group — scanned first), a
    // fan-out join (inGroup, one triple per item), and a smaller pattern
    // (hasValue, every other item) whose probe:build ratio trips the
    // hash-join thresholds.
    auto iri = [](const std::string& s) {
      return Term::Iri("http://example.org/" + s);
    };
    const Term group_label = iri("groupLabel");
    const Term in_group = iri("inGroup");
    const Term has_value = iri("hasValue");
    for (int g = 0; g < 7; ++g) {
      store_.Add(iri("group" + std::to_string(g)), group_label,
                 Term::String("G" + std::to_string(g)));
    }
    for (int i = 0; i < 200; ++i) {
      Term item = iri("item" + std::to_string(i));
      store_.Add(item, in_group, iri("group" + std::to_string(i % 7)));
      if (i % 2 == 0) store_.Add(item, has_value, Term::Integer(i % 23));
    }
    store_.Finalize();
  }

  static constexpr const char* kJoinQuery =
      "SELECT ?gl (SUM(?v) AS ?sum) (COUNT(?i) AS ?n) WHERE { "
      "?g <http://example.org/groupLabel> ?gl . "
      "?i <http://example.org/inGroup> ?g . "
      "?i <http://example.org/hasValue> ?v } GROUP BY ?gl";

  TripleStore store_;
};

TEST_F(HashJoinExecTest, PlannerPicksHashProbe) {
  auto query = sparql::Parser::Parse(kJoinQuery);
  ASSERT_TRUE(query.ok());
  auto plan = sparql::Planner::Build(&*query, store_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 3u);
  EXPECT_EQ(plan->steps[0].algo, sparql::JoinAlgo::kScan);
  // Step 1 fans out over the anchor (probe hint still tiny): index loop.
  EXPECT_EQ(plan->steps[1].algo, sparql::JoinAlgo::kIndexLoop);
  // Step 2: 200 probe rows against a 100-triple build — hash probe.
  EXPECT_EQ(plan->steps[2].algo, sparql::JoinAlgo::kHashProbe);
  ASSERT_EQ(plan->steps[2].key_positions.size(), 1u);
  EXPECT_EQ(plan->steps[2].key_positions[0], 0);  // subject is the key
  EXPECT_NE(plan->ToString().find("HJOIN"), std::string::npos);
}

TEST_F(HashJoinExecTest, HashJoinByteIdenticalAtEveryDop) {
  ThreadPool pool(4);
  QueryResult reference = MustRun(&store_, kJoinQuery, Volcano());
  ExpectByteIdentical(reference, MustRun(&store_, kJoinQuery, ExecOptions{}),
                      "serial batch");
  for (unsigned dop : {2u, 4u}) {
    ExpectByteIdentical(reference, MustRun(&store_, kJoinQuery, Parallel(&pool, dop)),
                        "dop=" + std::to_string(dop));
  }
}

TEST_F(HashJoinExecTest, LimitAbandonsExchangeCleanly) {
  // LIMIT without ORDER BY stops pulling mid-stream: the exchange must join
  // its in-flight morsel workers in its destructor without losing rows or
  // determinism.
  ThreadPool pool(4);
  const char* q =
      "SELECT ?i ?g WHERE { ?i <http://example.org/inGroup> ?g . "
      "?i <http://example.org/hasValue> ?v } LIMIT 5";
  QueryResult reference = MustRun(&store_, q, Volcano());
  for (int repeat = 0; repeat < 3; ++repeat) {
    ExpectByteIdentical(reference, MustRun(&store_, q, Parallel(&pool, 4)),
                        "limit repeat " + std::to_string(repeat));
  }
}

TEST_F(HashJoinExecTest, ExchangeReportsScheduleInStats) {
  ThreadPool pool(4);
  QueryEngine engine(&store_, Parallel(&pool, 4));
  auto result = engine.Execute(kJoinQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.morsels, 0u);
  EXPECT_GT(result->stats.dop, 1u);

  QueryEngine serial(&store_);
  auto serial_result = serial.Execute(kJoinQuery);
  ASSERT_TRUE(serial_result.ok());
  EXPECT_EQ(serial_result->stats.dop, 1u);
  // Row counters are identical to the serial batch run even through the
  // exchange (additive merge in partition order).
  EXPECT_EQ(result->stats.rows_scanned, serial_result->stats.rows_scanned);
  EXPECT_EQ(result->stats.intermediate_rows,
            serial_result->stats.intermediate_rows);
  EXPECT_EQ(result->stats.output_rows, serial_result->stats.output_rows);
}

// ---------------------------------------------------------------------------
// TripleStore partitioned-scan API.
// ---------------------------------------------------------------------------

TEST_F(HashJoinExecTest, ScanPartitionsConcatenateToFullRange) {
  TripleStore::ScanRange full = store_.Scan(kNullTermId, kNullTermId, kNullTermId);
  for (size_t parts : {size_t{1}, size_t{3}, size_t{16}, full.size(), full.size() * 2}) {
    auto partitions =
        store_.ScanPartitions(kNullTermId, kNullTermId, kNullTermId, parts);
    ASSERT_FALSE(partitions.empty());
    EXPECT_LE(partitions.size(), std::max<size_t>(parts, 1));
    const Triple* cursor = full.begin();
    size_t total = 0;
    for (const auto& partition : partitions) {
      EXPECT_EQ(partition.begin(), cursor) << "partitions must be contiguous";
      EXPECT_FALSE(partition.empty());
      cursor = partition.end();
      total += partition.size();
    }
    EXPECT_EQ(cursor, full.end());
    EXPECT_EQ(total, full.size());
  }
  // Empty scans yield no partitions.
  TermId absent = store_.Intern(Term::Iri("http://example.org/unused"));
  store_.Finalize();
  EXPECT_TRUE(store_.ScanPartitions(absent, kNullTermId, kNullTermId, 4).empty());
}

TEST(ScanFieldOrderTest, MatchesIndexSelection) {
  using A = std::array<int, 3>;
  EXPECT_EQ(TripleStore::ScanFieldOrder(true, true, true), (A{0, 1, 2}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(true, true, false), (A{0, 1, 2}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(true, false, true), (A{0, 2, 1}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(true, false, false), (A{0, 1, 2}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(false, true, true), (A{1, 2, 0}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(false, true, false), (A{1, 0, 2}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(false, false, true), (A{2, 0, 1}));
  EXPECT_EQ(TripleStore::ScanFieldOrder(false, false, false), (A{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Dataset-level byte-identity: the engine's whole query surface (root view,
// canonical queries, workload) on geopop/lubm/swdf at 1/2/4 threads.
// ---------------------------------------------------------------------------

class DatasetExecTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetExecTest, RootAndCanonicalQueriesByteIdentical) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, GetParam());
  TripleStore* store = engine.store();
  const core::Facet& facet = engine.facet();

  std::vector<std::string> queries;
  queries.push_back(facet.ViewQuerySparql(facet.FullMask()));
  queries.push_back(facet.ViewQuerySparql(0));
  for (uint32_t mask = 0; mask < (1u << facet.num_dims()); mask += 3) {
    queries.push_back(facet.CanonicalQuerySparql(mask));
  }

  ThreadPool pool(4);
  for (const std::string& q : queries) {
    QueryResult reference = MustRun(store, q, Volcano());
    ExpectByteIdentical(reference, MustRun(store, q, ExecOptions{}),
                        std::string(GetParam()) + " serial: " + q);
    for (unsigned dop : {2u, 4u}) {
      ExpectByteIdentical(
          reference, MustRun(store, q, Parallel(&pool, dop)),
          std::string(GetParam()) + " dop=" + std::to_string(dop) + ": " + q);
    }
  }
}

TEST_P(DatasetExecTest, MaintainedGraphByteIdenticalAcrossThreads) {
  // ApplyUpdates evaluates the cached root view through the batch engine
  // (parallel at 4 threads); the maintained graph — including fresh blank
  // labels — must be byte-identical to the single-threaded engine, and the
  // post-update root view must still match the Volcano reference executor.
  auto run = [&](unsigned threads) {
    auto engine = std::make_unique<core::SofosEngine>();
    testing::SetUpEngine(engine.get(), GetParam());
    engine->SetNumThreads(threads);
    testing::MustProfile(engine.get());
    core::TripleCountCostModel model;
    auto selection = engine->SelectViews(model, 3);
    EXPECT_TRUE(selection.ok());
    EXPECT_TRUE(engine->MaterializeSelection(*selection).ok());

    workload::UpdateStreamOptions options;
    options.num_batches = 2;
    options.batch_fraction = 0.05;
    options.seed = 29;
    auto stream = workload::GenerateUpdateStream(
        engine->base_snapshot(), engine->store()->dictionary(), options);
    EXPECT_TRUE(stream.ok());
    for (const auto& delta : *stream) {
      auto outcome = engine->ApplyUpdates(delta);
      EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
    return engine;
  };

  auto serial = run(1);
  auto parallel = run(4);

  auto decode = [](const TripleStore& store) {
    std::vector<std::string> lines;
    for (const Triple& t : store.triples()) {
      lines.push_back(store.dictionary().term(t.s).ToNTriples() + " " +
                      store.dictionary().term(t.p).ToNTriples() + " " +
                      store.dictionary().term(t.o).ToNTriples());
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(decode(*serial->store()), decode(*parallel->store()));

  const core::Facet& facet = serial->facet();
  std::string root = facet.ViewQuerySparql(facet.FullMask());
  QueryResult reference = MustRun(serial->store(), root, Volcano());
  ExpectByteIdentical(reference, MustRun(serial->store(), root, ExecOptions{}),
                      std::string(GetParam()) + " post-update root view");
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetExecTest,
                         ::testing::Values("geopop", "lubm", "swdf"));

// ---------------------------------------------------------------------------
// Engine-level knobs.
// ---------------------------------------------------------------------------

TEST(ExecEngineTest, WorkloadInvariantUnderExecThreadsKnob) {
  auto run = [](unsigned threads, unsigned exec_threads) {
    core::SofosEngine engine;
    testing::SetUpEngine(&engine, "geopop");
    engine.SetNumThreads(threads);
    engine.SetExecThreads(exec_threads);
    testing::MustProfile(&engine);
    workload::WorkloadGenerator generator(&engine.facet(), engine.store());
    workload::WorkloadOptions options;
    options.num_queries = 12;
    options.seed = 5;
    auto queries = generator.Generate(options);
    EXPECT_TRUE(queries.ok());
    auto report = engine.RunWorkload(*queries, /*allow_views=*/false);
    EXPECT_TRUE(report.ok());
    return std::move(report).value();
  };

  core::WorkloadReport reference = run(1, 0);
  const std::vector<std::pair<unsigned, unsigned>> configs = {
      {4, 0}, {4, 1}, {4, 4}, {2, 3}};
  for (auto [threads, exec_threads] : configs) {
    core::WorkloadReport report = run(threads, exec_threads);
    ASSERT_EQ(report.outcomes.size(), reference.outcomes.size());
    EXPECT_EQ(report.total_rows_scanned, reference.total_rows_scanned)
        << threads << "/" << exec_threads;
    for (size_t i = 0; i < report.outcomes.size(); ++i) {
      EXPECT_EQ(report.outcomes[i].result_rows,
                reference.outcomes[i].result_rows);
      testing::ExpectSameAnswers(report.outcomes[i].result,
                                 reference.outcomes[i].result,
                                 "query " + std::to_string(i));
    }
  }
}

TEST(ExecEngineTest, ExplainShowsBatchSchedule) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "lubm");
  engine.SetNumThreads(4);
  auto text = engine.ExplainSparql(
      engine.facet().ViewQuerySparql(engine.facet().FullMask()));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("SCAN"), std::string::npos);
  EXPECT_NE(text->find("PHYSICAL"), std::string::npos);
  EXPECT_NE(text->find("dop="), std::string::npos);
  EXPECT_NE(text->find("morsels="), std::string::npos);
}

}  // namespace
}  // namespace sofos
