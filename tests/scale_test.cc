/// Tests for the million-triple-scale machinery (label: scale):
///   - compact-vs-sorted layout: Scan()/Count() byte-identity over every
///     binding pattern at shard_count ∈ {1, 8} on a ~100k-triple LUBM
///     graph, including probes for absent ids (the bloom-reject path)
///   - SPARQL answers and Explain plans byte-identical between layouts
///   - delta maintenance on the compact layout matches the sorted layout
///   - front-coded dictionary round trip: ids stable, terms byte-identical
///   - footprint: compact + front-coded stays under 65% of the sorted
///     baseline (the acceptance bound is a 40% cut; measured ~50%)
///   - ScaleSpec parsing and the engine's StoreLayout knob
///   - concurrent snapshot readers against a compact writer (the TSan lane)

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/lubm.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using testing::ExpectSameAnswers;

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

/// ~100k triples keeps the full matrix under a second in Release; TSan
/// multiplies everything by ~10x, so it gets a smaller graph.
const char* ScaleTarget() { return kUnderTsan ? "30k" : "100k"; }

/// Generates the scale-point LUBM graph into `store` (finalized at the
/// store's current shard count).
void BuildScaleGraph(TripleStore* store) {
  auto spec = datagen::ParseScaleSpec(ScaleTarget());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto dataset = datagen::GenerateByName("lubm", spec.value(), 42, store);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
}

std::vector<std::tuple<TermId, TermId, TermId>> ScanImage(
    const TripleStore& store, TermId s, TermId p, TermId o) {
  std::vector<std::tuple<TermId, TermId, TermId>> out;
  for (const Triple& t : store.Scan(s, p, o)) out.emplace_back(t.s, t.p, t.o);
  return out;
}

/// Probe ids drawn from the live graph plus guaranteed-absent ids — the
/// latter exercise the bloom reject and the CSR miss paths.
struct Probes {
  std::vector<TermId> subjects, predicates, objects;
};

Probes SampleProbes(const TripleStore& store) {
  Probes probes;
  const auto& triples = store.triples();
  const size_t stride = std::max<size_t>(1, triples.size() / 64);
  for (size_t i = 0; i < triples.size(); i += stride) {
    probes.subjects.push_back(triples[i].s);
    probes.predicates.push_back(triples[i].p);
    probes.objects.push_back(triples[i].o);
  }
  // kNullTermId never matches; id past the dictionary never occurs; a
  // subject id used as a predicate misses every subject-family bloom.
  const TermId absent = static_cast<TermId>(store.NumTerms() + 7);
  probes.subjects.push_back(absent);
  probes.predicates.push_back(absent);
  probes.predicates.push_back(probes.subjects.front());
  probes.objects.push_back(absent);
  return probes;
}

/// Asserts Scan() and Count() agree between `a` and `b` for every binding
/// pattern over the probe ids (byte-identical: same triples, same order).
void ExpectSameScans(const TripleStore& a, const TripleStore& b,
                     const std::string& context) {
  const Probes probes = SampleProbes(a);
  size_t checked = 0;
  for (TermId s : probes.subjects) {
    for (TermId p : probes.predicates) {
      for (TermId o : probes.objects) {
        // All 8 binding patterns of the (s, p, o) probe.
        for (int mask = 0; mask < 8; ++mask) {
          const TermId ps = (mask & 1) != 0 ? s : kNullTermId;
          const TermId pp = (mask & 2) != 0 ? p : kNullTermId;
          const TermId po = (mask & 4) != 0 ? o : kNullTermId;
          // Full scans are O(n) each; once is plenty.
          if (mask == 0 && checked > 0) continue;
          ASSERT_EQ(ScanImage(a, ps, pp, po), ScanImage(b, ps, pp, po))
              << context << " scan mask=" << mask << " s=" << ps
              << " p=" << pp << " o=" << po;
          ASSERT_EQ(a.Count(ps, pp, po), b.Count(ps, pp, po))
              << context << " count mask=" << mask << " s=" << ps
              << " p=" << pp << " o=" << po;
          ++checked;
        }
      }
      // The inner product over all probe objects is large; cap the sweep
      // so the suite stays fast while still covering every pattern shape.
      if (checked > 4000) return;
    }
  }
}

std::vector<std::string> ScaleQueries() {
  const std::string ns = datagen::kLubmNs;
  return {
      "PREFIX lubm: <" + ns + ">\n"
      "SELECT ?c ?lvl WHERE {\n"
      "  ?c lubm:offeredBy <" + ns + "dept/U0D0> .\n"
      "  ?c lubm:courseLevel ?lvl .\n"
      "}",
      "PREFIX lubm: <" + ns + ">\n"
      "SELECT ?student WHERE {\n"
      "  ?dept lubm:subOrganizationOf <" + ns + "univ/U0> .\n"
      "  ?course lubm:offeredBy ?dept .\n"
      "  ?student lubm:takesCourse ?course .\n"
      "}",
      "PREFIX lubm: <" + ns + ">\n"
      "SELECT ?lvl (COUNT(?c) AS ?n) WHERE {\n"
      "  ?c lubm:courseLevel ?lvl .\n"
      "} GROUP BY ?lvl",
      "PREFIX lubm: <" + ns + ">\n"
      "SELECT ?s ?stype WHERE {\n"
      "  ?s lubm:studentType ?stype .\n"
      "  ?s lubm:advisor <" + ns + "prof/U0D0P0> .\n"
      "}",
  };
}

TEST(CompactLayoutTest, ScanByteIdentityAcrossLayoutsAndShardCounts) {
  for (size_t shards : {1u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shards));
    TripleStore sorted;
    sorted.SetShardCount(shards);
    BuildScaleGraph(&sorted);

    TripleStore compact;
    compact.SetShardCount(shards);
    compact.SetCompactLayout(true);
    BuildScaleGraph(&compact);
    ASSERT_TRUE(compact.compact_layout());

    ExpectSameScans(sorted, compact,
                    "shards=" + std::to_string(shards));
  }
}

TEST(CompactLayoutTest, QueriesAndExplainIdenticalAcrossLayouts) {
  for (size_t shards : {1u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shards));
    TripleStore sorted;
    sorted.SetShardCount(shards);
    BuildScaleGraph(&sorted);

    TripleStore compact;
    compact.SetShardCount(shards);
    compact.SetCompactLayout(true);
    BuildScaleGraph(&compact);
    compact.mutable_dictionary()->SetFrontCoding(true);

    sparql::QueryEngine sorted_engine(&sorted);
    sparql::QueryEngine compact_engine(&compact);
    for (const std::string& sparql : ScaleQueries()) {
      SOFOS_ASSERT_OK_AND_ASSIGN(auto sorted_result,
                                 sorted_engine.Execute(sparql));
      SOFOS_ASSERT_OK_AND_ASSIGN(auto compact_result,
                                 compact_engine.Execute(sparql));
      ExpectSameAnswers(std::move(sorted_result), std::move(compact_result),
                        "shards=" + std::to_string(shards));

      SOFOS_ASSERT_OK_AND_ASSIGN(auto sorted_plan,
                                 sorted_engine.Explain(sparql));
      SOFOS_ASSERT_OK_AND_ASSIGN(auto compact_plan,
                                 compact_engine.Explain(sparql));
      EXPECT_EQ(sorted_plan, compact_plan);
    }
  }
}

TEST(CompactLayoutTest, DeltaMaintenanceMatchesSortedLayout) {
  ThreadPool pool(2);
  TripleStore sorted;
  sorted.SetShardCount(8);
  BuildScaleGraph(&sorted);

  TripleStore compact;
  compact.SetShardCount(8);
  compact.SetCompactLayout(true);
  BuildScaleGraph(&compact);

  workload::UpdateStreamOptions options;
  options.num_batches = 3;
  options.batch_fraction = 0.002;
  options.seed = 21;
  auto stream = workload::GenerateUpdateStream(sorted.triples(),
                                               sorted.dictionary(), options);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  for (const auto& batch : *stream) {
    for (const auto& t : batch.adds) {
      sorted.StageAdd(sorted.Intern(t.s), sorted.Intern(t.p),
                      sorted.Intern(t.o));
      compact.StageAdd(compact.Intern(t.s), compact.Intern(t.p),
                       compact.Intern(t.o));
    }
    for (const auto& t : batch.deletes) {
      sorted.StageDelete(sorted.Intern(t.s), sorted.Intern(t.p),
                         sorted.Intern(t.o));
      compact.StageDelete(compact.Intern(t.s), compact.Intern(t.p),
                          compact.Intern(t.o));
    }
    sorted.ApplyDelta(&pool);
    compact.ApplyDelta(&pool);
    ASSERT_EQ(sorted.NumTriples(), compact.NumTriples());
    ExpectSameScans(sorted, compact, "post-delta");
  }
}

TEST(CompactLayoutTest, FootprintCutAtLeastThirtyFivePercent) {
  TripleStore store;
  store.SetShardCount(8);
  BuildScaleGraph(&store);
  const uint64_t sorted_bytes = store.MemoryBytes();

  store.SetCompactLayout(true);
  store.mutable_dictionary()->SetFrontCoding(true);
  const uint64_t compact_bytes = store.MemoryBytes();

  // Acceptance asks for a >= 40% cut at 1m triples; measured is ~48% even
  // at this test's 100k. 65% leaves room for allocator noise without ever
  // letting a real regression through.
  EXPECT_LT(static_cast<double>(compact_bytes),
            0.65 * static_cast<double>(sorted_bytes))
      << "compact=" << compact_bytes << " sorted=" << sorted_bytes;
}

TEST(FrontCodingTest, DictionaryRoundTripPreservesIdsAndBytes) {
  TripleStore store;
  BuildScaleGraph(&store);
  Dictionary* dict = store.mutable_dictionary();

  const size_t n = dict->size();
  std::vector<Term> before;
  const size_t stride = std::max<size_t>(1, n / 512);
  for (TermId id = 1; id <= n; id += stride) before.push_back(dict->term(id));

  dict->SetFrontCoding(true);
  size_t i = 0;
  for (TermId id = 1; id <= n; id += stride, ++i) {
    ASSERT_EQ(dict->term(id), before[i]) << "id=" << id;
    auto looked_up = dict->Lookup(before[i]);
    ASSERT_TRUE(looked_up.has_value());
    EXPECT_EQ(*looked_up, id);
  }
  // New interns keep working in front-coded mode, and switching back
  // preserves them too.
  const TermId fresh = dict->Intern(
      Term::Iri(std::string(datagen::kLubmNs) + "univ/brand-new"));
  EXPECT_EQ(dict->Intern(Term::Iri(std::string(datagen::kLubmNs) +
                                   "univ/brand-new")),
            fresh);

  dict->SetFrontCoding(false);
  i = 0;
  for (TermId id = 1; id <= n; id += stride, ++i) {
    ASSERT_EQ(dict->term(id), before[i]) << "id=" << id;
  }
  EXPECT_EQ(dict->Lookup(Term::Iri(std::string(datagen::kLubmNs) +
                                   "univ/brand-new")),
            fresh);
}

TEST(ScaleSpecTest, ParsesTiersAndTargets) {
  auto demo = datagen::ParseScaleSpec("demo");
  ASSERT_TRUE(demo.ok());
  EXPECT_EQ(demo->tier, datagen::Scale::kDemo);
  EXPECT_EQ(demo->target_triples, 0u);

  auto hundred_k = datagen::ParseScaleSpec("100k");
  ASSERT_TRUE(hundred_k.ok());
  EXPECT_EQ(hundred_k->target_triples, 100000u);

  auto one_m = datagen::ParseScaleSpec("1m");
  ASSERT_TRUE(one_m.ok());
  EXPECT_EQ(one_m->target_triples, 1000000u);

  auto plain = datagen::ParseScaleSpec("250000");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->target_triples, 250000u);

  EXPECT_FALSE(datagen::ParseScaleSpec("").ok());
  EXPECT_FALSE(datagen::ParseScaleSpec("10x").ok());
  EXPECT_FALSE(datagen::ParseScaleSpec("100").ok());     // below 1k floor
  EXPECT_FALSE(datagen::ParseScaleSpec("999m").ok());    // above 200m cap
  EXPECT_FALSE(datagen::ParseScaleSpec("12k34").ok());   // trailing junk
}

TEST(ScaleSpecTest, GeneratorsLandNearTarget) {
  for (const char* name : {"lubm", "geopop", "swdf"}) {
    TripleStore store;
    auto spec = datagen::ParseScaleSpec("30k");
    ASSERT_TRUE(spec.ok());
    auto dataset = datagen::GenerateByName(name, spec.value(), 42, &store);
    ASSERT_TRUE(dataset.ok()) << name << ": " << dataset.status().ToString();
    // lubm tracks targets within a few percent; geopop/swdf scale several
    // schema axes at once and are specified to land within tens of percent.
    EXPECT_GT(store.NumTriples(), 30000u / 2) << name;
    EXPECT_LT(store.NumTriples(), 30000u * 2) << name;
  }
}

TEST(StoreLayoutTest, EngineKnobSwitchesLayoutWithIdenticalAnswers) {
  auto build_engine = [](core::SofosEngine* engine,
                         core::SofosEngine::StoreLayout layout) {
    engine->SetShardCount(8);
    engine->SetStoreLayout(layout);
    TripleStore store;
    store.SetShardCount(8);
    auto spec = datagen::ParseScaleSpec(ScaleTarget());
    ASSERT_TRUE(spec.ok());
    auto dataset =
        datagen::GenerateByName("lubm", spec.value(), 42, &store);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    SOFOS_ASSERT_OK(engine->LoadStore(std::move(store)));
    auto facet = core::Facet::FromSparql(dataset->facet_sparql, dataset->name,
                                         dataset->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine->SetFacet(std::move(facet).value()));
  };

  core::SofosEngine sorted_engine;
  build_engine(&sorted_engine, core::SofosEngine::StoreLayout::kSorted);
  ASSERT_FALSE(sorted_engine.store()->compact_layout());

  core::SofosEngine compact_engine;
  build_engine(&compact_engine, core::SofosEngine::StoreLayout::kCompact);
  ASSERT_TRUE(compact_engine.store()->compact_layout());
  ASSERT_TRUE(compact_engine.store()->mutable_dictionary()->front_coded());

  for (const std::string& sparql : ScaleQueries()) {
    SOFOS_ASSERT_OK_AND_ASSIGN(auto sorted_outcome,
                               sorted_engine.AnswerSparql(sparql));
    SOFOS_ASSERT_OK_AND_ASSIGN(auto compact_outcome,
                               compact_engine.AnswerSparql(sparql));
    ExpectSameAnswers(std::move(sorted_outcome.result),
                      std::move(compact_outcome.result), "layout knob");
  }

  // kAuto: the demo graphs sit far below the threshold and must stay on
  // the sorted layout so existing demo plans and memory images are
  // unchanged.
  core::SofosEngine auto_engine;
  TripleStore demo;
  auto dataset =
      datagen::GenerateByName("lubm", datagen::Scale::kDemo, 42, &demo);
  ASSERT_TRUE(dataset.ok());
  SOFOS_ASSERT_OK(auto_engine.LoadStore(std::move(demo)));
  EXPECT_FALSE(auto_engine.store()->compact_layout());
}

TEST(StoreLayoutTest, ParseAndName) {
  auto parsed = core::ParseStoreLayout("compact");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, core::SofosEngine::StoreLayout::kCompact);
  EXPECT_EQ(core::StoreLayoutName(core::SofosEngine::StoreLayout::kAuto),
            "auto");
  EXPECT_EQ(core::StoreLayoutName(core::SofosEngine::StoreLayout::kSorted),
            "sorted");
  EXPECT_EQ(core::StoreLayoutName(core::SofosEngine::StoreLayout::kCompact),
            "compact");
  EXPECT_FALSE(core::ParseStoreLayout("bogus").ok());
}

/// Readers on COW snapshots of a compact store race a writer applying
/// deltas to the original — the shard-replacement publish path under TSan.
TEST(CompactLayoutTest, ConcurrentSnapshotReadersDuringDeltas) {
  ThreadPool pool(2);
  TripleStore store;
  store.SetShardCount(8);
  store.SetCompactLayout(true);
  BuildScaleGraph(&store);

  workload::UpdateStreamOptions options;
  options.num_batches = 4;
  options.batch_fraction = 0.001;
  options.seed = 7;
  auto stream = workload::GenerateUpdateStream(store.triples(),
                                               store.dictionary(), options);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  // Interning touches the shared dictionary; do it before readers start so
  // the loop below only exercises Scan-vs-ApplyDelta interleavings.
  struct IdDelta {
    std::vector<Triple> adds, deletes;
  };
  std::vector<IdDelta> deltas;
  for (const auto& batch : *stream) {
    IdDelta delta;
    for (const auto& t : batch.adds) {
      delta.adds.push_back(
          Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
    }
    for (const auto& t : batch.deletes) {
      delta.deletes.push_back(
          Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
    }
    deltas.push_back(std::move(delta));
  }

  const TripleStore snapshot = store.Clone();
  const uint64_t snapshot_triples = snapshot.NumTriples();
  const Probes probes = SampleProbes(snapshot);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&snapshot, &probes, &stop, &reads,
                          snapshot_triples] {
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t sum = 0;
        for (TermId s : probes.subjects) {
          sum += snapshot.Count(s, kNullTermId, kNullTermId);
        }
        EXPECT_EQ(snapshot.NumTriples(), snapshot_triples);
        reads.fetch_add(1 + (sum != sum));  // keep `sum` alive
      }
    });
  }

  for (const IdDelta& delta : deltas) {
    for (const Triple& t : delta.adds) store.StageAdd(t.s, t.p, t.o);
    for (const Triple& t : delta.deletes) store.StageDelete(t.s, t.p, t.o);
    store.ApplyDelta(&pool);
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  // The snapshot never saw the deltas; the store did.
  EXPECT_EQ(snapshot.NumTriples(), snapshot_triples);
  EXPECT_NE(store.NumTriples(), 0u);
}

}  // namespace
}  // namespace sofos
