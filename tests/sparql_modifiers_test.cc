/// Solution-modifier interaction tests: DISTINCT × ORDER BY × LIMIT/OFFSET
/// × HAVING × expression projection, which individually pass but interact
/// in subtle ways (application order is project → distinct → order → slice).

#include "gtest/gtest.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

Term Ex(const std::string& s) { return Term::Iri("http://m/" + s); }

class ModifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Scores: a->3, a->1, b->2, b->2, c->5 (duplicate object for b).
    store_.Add(Ex("a"), Ex("score"), Term::Integer(3));
    store_.Add(Ex("a"), Ex("score"), Term::Integer(1));
    store_.Add(Ex("b"), Ex("score"), Term::Integer(2));
    store_.Add(Ex("b"), Ex("bonus"), Term::Integer(2));
    store_.Add(Ex("c"), Ex("score"), Term::Integer(5));
    store_.Finalize();
    engine_ = std::make_unique<QueryEngine>(&store_);
  }

  QueryResult Run(const std::string& q) {
    auto r = engine_->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << q;
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  TripleStore store_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ModifierTest, OrderByMultipleKeys) {
  QueryResult r = Run(
      "SELECT ?s ?v WHERE { ?s <http://m/score> ?v } ORDER BY ?s DESC(?v)");
  ASSERT_EQ(r.NumRows(), 4u);
  // a(3), a(1), b(2), c(5): primary by subject IRI, secondary by value desc.
  EXPECT_EQ(r.rows[0][0].lexical(), "http://m/a");
  EXPECT_EQ(r.rows[0][1].AsInt64().value(), 3);
  EXPECT_EQ(r.rows[1][1].AsInt64().value(), 1);
  EXPECT_EQ(r.rows[2][0].lexical(), "http://m/b");
  EXPECT_EQ(r.rows[3][0].lexical(), "http://m/c");
}

TEST_F(ModifierTest, DistinctAppliesBeforeOrderAndSlice) {
  // ?v values: 3,1,2,2,5 → distinct {3,1,2,5} → sorted {1,2,3,5} → slice.
  QueryResult r = Run(
      "SELECT DISTINCT ?v WHERE { ?s ?p ?v } ORDER BY ?v LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt64().value(), 3);
}

TEST_F(ModifierTest, OrderByExpressionOverAliases) {
  QueryResult r = Run(
      "SELECT ?s ((?v * -1) AS ?neg) WHERE { ?s <http://m/score> ?v } "
      "ORDER BY ?neg LIMIT 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].lexical(), "http://m/c");  // -5 smallest
}

TEST_F(ModifierTest, HavingWithMultipleClauses) {
  QueryResult r = Run(
      "SELECT ?s (SUM(?v) AS ?t) WHERE { ?s <http://m/score> ?v } GROUP BY ?s "
      "HAVING (SUM(?v) > 1) (COUNT(?v) < 2)");
  // a: sum 4 count 2 (fails count), b: 2/1 ok, c: 5/1 ok.
  r.SortCanonical();
  ASSERT_EQ(r.NumRows(), 2u);
}

TEST_F(ModifierTest, DistinctOnProjectedExpression) {
  // a(3+1), b(2), b-bonus(2), c(5): (v > 1) projects true/false.
  QueryResult r = Run("SELECT DISTINCT ((?v > 1) AS ?big) WHERE { ?s ?p ?v }");
  EXPECT_EQ(r.NumRows(), 2u);  // true and false
}

TEST_F(ModifierTest, AggregateThenOrderThenSlice) {
  QueryResult r = Run(
      "SELECT ?s (SUM(?v) AS ?t) WHERE { ?s <http://m/score> ?v } GROUP BY ?s "
      "ORDER BY DESC(?t) LIMIT 2");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].lexical(), "http://m/c");  // 5
  EXPECT_EQ(r.rows[1][0].lexical(), "http://m/a");  // 4
}

TEST_F(ModifierTest, OffsetBeyondDistinctResult) {
  QueryResult r = Run("SELECT DISTINCT ?s WHERE { ?s ?p ?o } OFFSET 10");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(ModifierTest, UnboundSortsFirstAscending) {
  // ?bonus only bound for b; project it for all subjects.
  QueryResult r = Run(
      "SELECT DISTINCT ?s ?b WHERE { ?s <http://m/score> ?v . "
      "?s2 <http://m/bonus> ?b . FILTER(?s = ?s2 || ?s != ?s2) } ORDER BY ?b ?s");
  // Every subject pairs with b's bonus (cross filter is a tautology); all
  // ?b bound here — this exercises the tautology filter path instead.
  EXPECT_GT(r.NumRows(), 0u);
}

TEST_F(ModifierTest, CountDistinctVsPlainInOneQuery) {
  QueryResult r = Run(
      "SELECT (COUNT(?v) AS ?n) (COUNT(DISTINCT ?v) AS ?d) WHERE { ?s ?p ?v }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64().value(), 5);
  EXPECT_EQ(r.rows[0][1].AsInt64().value(), 4);  // {1,2,3,5}
}

TEST_F(ModifierTest, GroupByWithLimitZero) {
  QueryResult r = Run(
      "SELECT ?s (SUM(?v) AS ?t) WHERE { ?s <http://m/score> ?v } GROUP BY ?s "
      "LIMIT 0");
  EXPECT_EQ(r.NumRows(), 0u);
}

}  // namespace
}  // namespace sparql
}  // namespace sofos
