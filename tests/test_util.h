#ifndef SOFOS_TESTS_TEST_UTIL_H_
#define SOFOS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "rdf/triple_store.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace testing {

/// gtest helpers for Status/Result.
#define SOFOS_ASSERT_OK(expr)                                     \
  do {                                                            \
    const ::sofos::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define SOFOS_EXPECT_OK(expr)                                     \
  do {                                                            \
    const ::sofos::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

/// Asserts a Result is OK and moves its value into `lhs`.
#define SOFOS_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                    \
  auto SOFOS_TEST_CONCAT_(_res_, __LINE__) = (rexpr);             \
  ASSERT_TRUE(SOFOS_TEST_CONCAT_(_res_, __LINE__).ok())           \
      << SOFOS_TEST_CONCAT_(_res_, __LINE__).status().ToString(); \
  lhs = std::move(SOFOS_TEST_CONCAT_(_res_, __LINE__)).value()

#define SOFOS_TEST_CONCAT_(a, b) SOFOS_TEST_CONCAT_IMPL_(a, b)
#define SOFOS_TEST_CONCAT_IMPL_(a, b) a##b

/// Builds the paper's Figure 1 knowledge graph: countries with names,
/// populations (per year), languages, and continent membership.
inline void BuildFigure1Graph(TripleStore* store) {
  auto iri = [](const std::string& s) {
    return Term::Iri("http://example.org/" + s);
  };
  const Term name = iri("name");
  const Term population = iri("population");
  const Term language = iri("language");
  const Term year = iri("year");
  const Term part_of = iri("partOf");

  struct CountryRow {
    const char* id;
    const char* label;
    int64_t pop;
    const char* lang;
    const char* continent;
  };
  const CountryRow rows[] = {
      {"France", "France", 67000000, "French", "EU"},
      {"Germany", "Germany", 82000000, "German", "EU"},
      {"Italy", "Italy", 60000000, "Italian", "EU"},
      {"Canada", "Canada", 37000000, "French", "NA"},
      {"Canada", "Canada", 37000000, "English", "NA"},
  };
  for (const auto& row : rows) {
    Term c = iri(row.id);
    store->Add(c, name, Term::String(row.label));
    store->Add(c, population, Term::Integer(row.pop));
    store->Add(c, language, Term::String(row.lang));
    store->Add(c, year, Term::Integer(2019));
    store->Add(c, part_of, iri(row.continent));
  }
  store->Finalize();
}

/// Executes a query and asserts success.
inline sparql::QueryResult MustExecute(TripleStore* store, const std::string& q) {
  sparql::QueryEngine engine(store);
  auto result = engine.Execute(q);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nquery: " << q;
  if (!result.ok()) return sparql::QueryResult{};
  auto value = std::move(result).value();
  value.SortCanonical();
  return value;
}

}  // namespace testing
}  // namespace sofos

#endif  // SOFOS_TESTS_TEST_UTIL_H_
