/// Observability subsystem tests: LatencyHistogram::Merge edge cases, the
/// trace span layer (nesting, cross-thread handoff, disabled no-op), the
/// MetricsRegistry (instrument identity, collectors, Prometheus/JSON
/// exposition completeness), EXPLAIN ANALYZE consistency (per-operator
/// actuals vs ExecStats totals, shape invariance across dop and shard
/// counts), result-cache TTLs under a fake clock, and the server's
/// ANALYZE/TRACE/METRICS verbs over loopback. Runs under the TSan lane
/// (scripts/run_tsan.sh, label `observability`).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/facet.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

using server::BlockingClient;
using server::ResultCache;
using server::ResultCacheOptions;
using server::ServerOptions;
using server::SofosServer;

// ---- LatencyHistogram::Merge edge cases -----------------------------------

TEST(LatencyHistogramMergeTest, EmptyMergeEmptyStaysEmpty) {
  LatencyHistogram::Snapshot a, b;
  a.Merge(b);
  EXPECT_EQ(a.count, 0u);
  EXPECT_EQ(a.sum_micros, 0.0);
  EXPECT_EQ(a.P50(), 0.0);
  EXPECT_EQ(a.P99(), 0.0);
  EXPECT_EQ(a.MeanMicros(), 0.0);
}

TEST(LatencyHistogramMergeTest, EmptyMergeNonEmptyAdopts) {
  LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  LatencyHistogram::Snapshot a;
  LatencyHistogram::Snapshot b = hist.TakeSnapshot();
  a.Merge(b);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_micros, b.sum_micros);
  EXPECT_EQ(a.P50(), b.P50());
  EXPECT_EQ(a.P99(), b.P99());
}

TEST(LatencyHistogramMergeTest, SaturatedTopBucketMergesWithoutOverflow) {
  // Samples far beyond the last bucket boundary all clamp into the top
  // bucket; merging two saturated snapshots must add counts, keep the
  // percentile pinned at the top bucket's upper bound, and preserve sums.
  LatencyHistogram h1, h2;
  // Past the top bucket's lower bound (1.5^54 us ~ 3.2e9) but small enough
  // that 1500 samples stay inside the histogram's uint64 nanosecond sum.
  const double huge = 1e10;
  for (int i = 0; i < 1000; ++i) h1.Record(huge);
  for (int i = 0; i < 500; ++i) h2.Record(huge);
  LatencyHistogram::Snapshot a = h1.TakeSnapshot();
  LatencyHistogram::Snapshot b = h2.TakeSnapshot();
  ASSERT_EQ(a.counts[LatencyHistogram::kNumBuckets - 1], 1000u);
  a.Merge(b);
  EXPECT_EQ(a.count, 1500u);
  EXPECT_EQ(a.counts[LatencyHistogram::kNumBuckets - 1], 1500u);
  const double top =
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(a.P50(), top);
  EXPECT_EQ(a.P99(), top);
  EXPECT_NEAR(a.sum_micros, 1500.0 * huge, 1500.0 * huge * 1e-6);
}

TEST(LatencyHistogramMergeTest, CrossThreadRecordDuringSnapshot) {
  // TakeSnapshot is documented safe against concurrent Record: every
  // snapshot must be internally consistent (bucket sum == count is not
  // guaranteed under relaxed ordering, but counts never exceed the total
  // recorded so far and merging per-thread snapshots reaches the final
  // tally).
  LatencyHistogram hist;
  constexpr int kThreads = 4, kPerThread = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>((t + 1) * 10 + i % 7));
      }
    });
  }
  std::thread snapshotter([&hist, &done] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
      EXPECT_GE(snap.count, last);  // monotone under concurrent recording
      EXPECT_LE(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
      last = snap.count;
    }
  });
  for (auto& r : recorders) r.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();
  LatencyHistogram::Snapshot final_snap = hist.TakeSnapshot();
  EXPECT_EQ(final_snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t c : final_snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, final_snap.count);
}

// ---- Trace spans ----------------------------------------------------------

TEST(TraceTest, DisabledSpansAreNoops) {
  ScopedSpan span(nullptr, "never.recorded");
  EXPECT_FALSE(span.enabled());
  EXPECT_EQ(span.id(), 0u);
  span.Close();  // must be a harmless no-op
}

TEST(TraceTest, NestedSpansLinkParentToChild) {
  TraceContext ctx;
  {
    ScopedSpan root(&ctx, "root");
    ASSERT_GT(root.id(), 0u);
    {
      ScopedSpan child(&ctx, "child", root.id());
      ScopedSpan grandchild(&ctx, "grandchild", child.id());
      (void)grandchild;
    }
  }
  std::vector<TraceSpan> spans = ctx.Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans are appended on close: innermost first.
  EXPECT_EQ(spans[0].name, "grandchild");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[2].name, "root");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[2].parent_id, 0u);
  for (const TraceSpan& s : spans) {
    EXPECT_GE(s.end_micros, s.start_micros);
  }
  // Children start no earlier than the parent and end no later than the
  // parent closed.
  EXPECT_GE(spans[1].start_micros, spans[2].start_micros);
  EXPECT_LE(spans[1].end_micros, spans[2].end_micros);
}

TEST(TraceTest, ThreadHandoffPreservesTheTree) {
  TraceContext ctx;
  uint64_t parent_id = 0;
  {
    ScopedSpan parent(&ctx, "parent");
    parent_id = parent.id();
    // The handoff pattern: capture the parent's id by value into worker
    // closures; each worker opens its own span on its own thread.
    std::vector<std::thread> workers;
    for (int i = 0; i < 3; ++i) {
      workers.emplace_back([&ctx, parent_id] {
        ScopedSpan child(&ctx, "worker", parent_id);
        (void)child;
      });
    }
    for (auto& w : workers) w.join();
  }
  std::vector<TraceSpan> spans = ctx.Spans();
  ASSERT_EQ(spans.size(), 4u);
  const uint64_t main_hash = TraceContext::CurrentThreadHash();
  int workers_seen = 0;
  for (const TraceSpan& s : spans) {
    if (s.name != "worker") continue;
    ++workers_seen;
    EXPECT_EQ(s.parent_id, parent_id);
    EXPECT_NE(s.thread_hash, main_hash);
  }
  EXPECT_EQ(workers_seen, 3);
}

TEST(TraceTest, ToJsonSortsByStartAndEscapes) {
  TraceContext ctx;
  {
    ScopedSpan outer(&ctx, "outer \"quoted\"");
    ScopedSpan inner(&ctx, "inner", outer.id());
  }
  std::string json = ctx.ToJson();
  // Sorted by start time: the outer span leads even though it closed last.
  size_t outer_pos = json.find("outer \\\"quoted\\\"");
  size_t inner_pos = json.find("\"inner\"");
  ASSERT_NE(outer_pos, std::string::npos) << json;
  ASSERT_NE(inner_pos, std::string::npos) << json;
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreStableAndSingletons) {
  MetricsRegistry registry;
  MetricCounter* c1 = registry.Counter("sofos_test_total");
  MetricCounter* c2 = registry.Counter("sofos_test_total");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  c2->Add();
  EXPECT_EQ(c1->Value(), 4u);

  MetricGauge* g = registry.Gauge("sofos_test_depth");
  g->Set(2.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.0);

  LatencyHistogram* h = registry.Histogram("sofos_test_micros");
  EXPECT_EQ(h, registry.Histogram("sofos_test_micros"));
  h->Record(10.0);
  EXPECT_EQ(h->TakeSnapshot().count, 1u);
}

TEST(MetricsRegistryTest, CollectReturnsEveryInstrumentSorted) {
  MetricsRegistry registry;
  registry.Counter("sofos_b_total")->Add(7);
  registry.Gauge("sofos_a_gauge")->Set(1.0);
  registry.Histogram("sofos_c_micros")->Record(5.0);
  std::vector<MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "sofos_a_gauge");
  EXPECT_EQ(samples[1].name, "sofos_b_total");
  EXPECT_EQ(samples[2].name, "sofos_c_micros");
  EXPECT_EQ(samples[1].counter_value, 7u);
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].histogram.count, 1u);
}

TEST(MetricsRegistryTest, CollectorsContributeUntilUnregistered) {
  MetricsRegistry registry;
  registry.Counter("sofos_owned_total")->Add(1);
  uint64_t id = registry.RegisterCollector([](std::vector<MetricSample>* out) {
    MetricSample s;
    s.name = "sofos_bridged_total{endpoint=\"query\"}";
    s.kind = MetricSample::Kind::kCounter;
    s.counter_value = 42;
    out->push_back(std::move(s));
  });
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("sofos_owned_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("sofos_bridged_total{endpoint=\"query\"} 42"),
            std::string::npos)
      << text;
  registry.UnregisterCollector(id);
  text = registry.PrometheusText();
  EXPECT_EQ(text.find("sofos_bridged_total"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, PrometheusTextExposesEveryKind) {
  MetricsRegistry registry;
  registry.Counter("sofos_reqs_total")->Add(2);
  registry.Gauge("sofos_depth")->Set(3.0);
  LatencyHistogram* h = registry.Histogram("sofos_lat_micros");
  for (int i = 0; i < 100; ++i) h->Record(100.0);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE sofos_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("sofos_reqs_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sofos_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sofos_lat_micros summary"), std::string::npos);
  EXPECT_NE(text.find("sofos_lat_micros{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("sofos_lat_micros_count 100"), std::string::npos);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"sofos_reqs_total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sofos_lat_micros\""), std::string::npos) << json;
}

// ---- Result cache TTLs ----------------------------------------------------

TEST(ResultCacheTtlTest, EntriesExpireLazilyOnLookup) {
  double now = 0.0;
  ResultCacheOptions options;
  options.shards = 1;
  options.default_ttl_seconds = 10.0;
  options.clock_seconds = [&now] { return now; };
  ResultCache cache(options);

  cache.Insert("k", 1, "payload");
  std::string payload;
  EXPECT_TRUE(cache.Lookup("k", &payload));
  now = 9.9;  // still inside the window
  EXPECT_TRUE(cache.Lookup("k", &payload));
  now = 10.0;  // age == ttl: expired
  EXPECT_FALSE(cache.Lookup("k", &payload));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.ttl_expired, 1u);
  EXPECT_EQ(stats.entries, 0u);  // the expired entry was erased
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTtlTest, PerEntryTtlOverridesAndZeroNeverExpires) {
  double now = 0.0;
  ResultCacheOptions options;
  options.shards = 1;
  options.default_ttl_seconds = 5.0;
  options.clock_seconds = [&now] { return now; };
  ResultCache cache(options);

  const double kAdmit = 1e6;  // cost above any admission floor
  cache.Insert("short", 1, "a", kAdmit, 1.0);   // explicit 1s
  cache.Insert("inherit", 1, "b", kAdmit);      // -1: inherits 5s default
  cache.Insert("forever", 1, "c", kAdmit, 0.0); // 0: never expires
  std::string payload;
  now = 2.0;
  EXPECT_FALSE(cache.Lookup("short", &payload));
  EXPECT_TRUE(cache.Lookup("inherit", &payload));
  EXPECT_TRUE(cache.Lookup("forever", &payload));
  now = 1e9;
  EXPECT_FALSE(cache.Lookup("inherit", &payload));
  EXPECT_TRUE(cache.Lookup("forever", &payload));
  EXPECT_EQ(cache.Stats().ttl_expired, 2u);
}

TEST(ResultCacheTtlTest, ReinsertRefreshesTheWindow) {
  double now = 0.0;
  ResultCacheOptions options;
  options.shards = 1;
  options.default_ttl_seconds = 10.0;
  options.clock_seconds = [&now] { return now; };
  ResultCache cache(options);

  cache.Insert("k", 1, "v1");
  now = 8.0;
  cache.Insert("k", 1, "v2");  // refresh resets inserted_at
  now = 15.0;                  // 7s after the refresh, 15s after the first
  std::string payload;
  EXPECT_TRUE(cache.Lookup("k", &payload));
  EXPECT_EQ(payload, "v2");
}

TEST(ResultCacheTtlTest, AgeAtHitIsRecorded) {
  double now = 0.0;
  ResultCacheOptions options;
  options.shards = 1;
  options.clock_seconds = [&now] { return now; };
  ResultCache cache(options);

  cache.Insert("k", 1, "v");
  now = 2.0;  // hit at age 2s = 2e6 us
  std::string payload;
  ASSERT_TRUE(cache.Lookup("k", &payload));
  auto stats = cache.Stats();
  ASSERT_EQ(stats.age_at_hit.count, 1u);
  EXPECT_GE(stats.age_at_hit.P50(), 2e6);
  EXPECT_LE(stats.age_at_hit.P50(), 2e6 * 1.5);  // one bucket ratio
}

// ---- EXPLAIN ANALYZE consistency ------------------------------------------

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kDemo, 42,
                                        &store_);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    facet_ = std::move(facet).value();
    root_query_ = facet_.ViewQuerySparql(facet_.FullMask());
  }

  TripleStore store_;
  core::Facet facet_;
  std::string root_query_;
};

TEST_F(AnalyzeTest, OperatorActualsSumToExecTotals) {
  sparql::ExecOptions options;
  options.analyze = true;
  sparql::QueryEngine qe(&store_, options);

  // Micros: operator times are inclusive, so the root's time is the sum of
  // every operator's self time; it must account for >= 95% of the measured
  // exec wall time (the remainder is the driver's pull loop) and never
  // exceed it. The bound is a statement about an undisturbed run — when the
  // whole suite runs in parallel, scheduler preemption between query setup
  // and the root operator's first pull can inflate the wall side — so take
  // the best of a few attempts. The structural checks hold on every attempt.
  bool micros_bound_met = false;
  double best_ratio = 0.0;
  std::string last_text;
  double last_exec = 0.0;
  for (int attempt = 0; attempt < 5 && !micros_bound_met; ++attempt) {
    sparql::QueryResult result;
    auto text = qe.Analyze(root_query_, &result);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    ASSERT_FALSE(result.stats.operators.empty());

    // Rows: the root operator's output is exactly the query's output.
    const sparql::OperatorStats& root = result.stats.operators.back();
    EXPECT_EQ(root.rows_out, result.stats.output_rows);
    EXPECT_EQ(result.stats.output_rows, result.NumRows());
    EXPECT_LE(root.micros, result.stats.exec_micros * 1.001);

    // The rendering carries the per-operator actuals and the totals line.
    EXPECT_NE(text->find("(actual rows="), std::string::npos);
    EXPECT_NE(text->find("TOTALS output_rows="), std::string::npos);

    double ratio = root.micros / result.stats.exec_micros;
    best_ratio = std::max(best_ratio, ratio);
    micros_bound_met = ratio >= 0.95;
    last_text = *text;
    last_exec = result.stats.exec_micros;
  }
  EXPECT_TRUE(micros_bound_met)
      << "best root/exec ratio over 5 attempts: " << best_ratio << "\n"
      << last_text << "\nexec=" << last_exec;
}

/// Reduces an ANALYZE rendering to its shape: operator labels, estimates
/// and row counts — everything that must be invariant across dop and shard
/// counts (timings, batch and morsel counts are not).
std::vector<std::string> AnalyzeShape(const std::string& text,
                                      const std::vector<sparql::OperatorStats>& ops) {
  std::vector<std::string> shape;
  for (const auto& op : ops) {
    shape.push_back(op.label + " est=" + std::to_string(op.est_rows) +
                    " rows=" + std::to_string(op.rows_out));
  }
  // Plus the totals' row figures from the rendering.
  size_t totals = text.find("TOTALS ");
  if (totals != std::string::npos) {
    size_t plan = text.find(" plan=", totals);
    shape.push_back(text.substr(totals, plan - totals));
  }
  return shape;
}

TEST_F(AnalyzeTest, ShapeIsInvariantAcrossDopAndShards) {
  ThreadPool pool(4);
  auto run = [this](TripleStore* store, ThreadPool* p, unsigned dop) {
    sparql::ExecOptions options;
    options.analyze = true;
    options.pool = p;
    options.dop = dop;
    sparql::QueryEngine qe(store, options);
    sparql::QueryResult result;
    auto text = qe.Analyze(root_query_, &result);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return AnalyzeShape(text.ok() ? *text : "", result.stats.operators);
  };

  std::vector<std::string> serial = run(&store_, nullptr, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run(&store_, &pool, 2), serial);
  EXPECT_EQ(run(&store_, &pool, 4), serial);

  // A re-sharded copy of the same data must produce the identical shape.
  TripleStore sharded;
  sharded.SetShardCount(8);
  auto spec = datagen::GenerateByName("geopop", datagen::Scale::kDemo, 42,
                                      &sharded);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(run(&sharded, nullptr, 1), serial);
  EXPECT_EQ(run(&sharded, &pool, 4), serial);
}

// ---- Engine registry + server verbs ---------------------------------------

class ObservabilityEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kTiny, 42,
                                        &store);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                         spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine_.LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine_.SetFacet(std::move(facet).value()));
    SOFOS_ASSERT_OK(engine_.Profile().status());
    core::TripleCountCostModel model;
    SOFOS_ASSERT_OK_AND_ASSIGN(auto selection, engine_.SelectViews(model, 2));
    SOFOS_ASSERT_OK(engine_.MaterializeSelection(selection).status());
  }

  core::SofosEngine engine_;
};

TEST_F(ObservabilityEngineTest, EnginePhasesAndViewHitsReachTheRegistry) {
  MetricsRegistry* registry = engine_.metrics();
  // Mutations already refreshed the state gauges during SetUp.
  auto gauge = [&](const char* name) { return registry->Gauge(name)->Value(); };
  EXPECT_GT(gauge("sofos_engine_epoch"), 0.0);
  EXPECT_EQ(gauge("sofos_engine_materialized_views"), 2.0);
  EXPECT_GT(gauge("sofos_engine_base_triples"), 0.0);
  EXPECT_GE(gauge("sofos_engine_current_triples"),
            gauge("sofos_engine_base_triples"));
  EXPECT_GE(gauge("sofos_engine_storage_amplification"), 1.0);

  // A routed query ticks the phase histograms, the query counter, and the
  // per-view labeled hit counter.
  std::vector<uint32_t> masks = engine_.MaterializedMasks();
  ASSERT_FALSE(masks.empty());
  std::string sparql = engine_.facet().CanonicalQuerySparql(masks[0]);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto outcome, engine_.AnswerSparql(sparql, true));
  ASSERT_TRUE(outcome.used_view);

  EXPECT_EQ(registry->Counter("sofos_engine_queries_total")->Value(), 1u);
  EXPECT_EQ(registry->Counter("sofos_engine_view_hits_total")->Value(), 1u);
  std::string labeled = "sofos_view_hits_total{view=\"" +
                        engine_.facet().MaskLabel(outcome.view_mask) + "\"}";
  EXPECT_EQ(registry->Counter(labeled)->Value(), 1u);
  EXPECT_EQ(registry->Histogram("sofos_engine_parse_micros")
                ->TakeSnapshot().count, 1u);
  EXPECT_EQ(registry->Histogram("sofos_engine_exec_micros")
                ->TakeSnapshot().count, 1u);
  EXPECT_EQ(registry->Histogram("sofos_engine_route_micros")
                ->TakeSnapshot().count, 1u);

  // The labeled counter round-trips through the Prometheus exposition.
  std::string text = registry->PrometheusText();
  EXPECT_NE(text.find(labeled + " 1"), std::string::npos) << text;
}

TEST_F(ObservabilityEngineTest, SnapshotTracingProducesPhaseSpans) {
  SOFOS_ASSERT_OK_AND_ASSIGN(auto snap, engine_.PublishSnapshot());
  std::string sparql = engine_.facet().CanonicalQuerySparql(0);
  TraceContext trace;
  SOFOS_ASSERT_OK(snap->Answer(sparql, true, &trace).status());
  std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_GE(spans.size(), 3u);
  uint64_t answer_id = 0;
  bool saw_parse = false, saw_exec = false;
  for (const TraceSpan& s : spans) {
    if (s.name == "snapshot.answer") answer_id = s.id;
  }
  ASSERT_GT(answer_id, 0u);
  for (const TraceSpan& s : spans) {
    if (s.name == "engine.parse") {
      saw_parse = true;
      EXPECT_EQ(s.parent_id, answer_id);
    }
    if (s.name == "engine.exec") {
      saw_exec = true;
      EXPECT_EQ(s.parent_id, answer_id);
    }
  }
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_exec);
  // Untraced answers on the same snapshot still work (null context).
  SOFOS_ASSERT_OK(snap->Answer(sparql, true).status());
}

class ObservabilityServerTest : public ObservabilityEngineTest {};

TEST_F(ObservabilityServerTest, AnalyzeTraceAndMetricsVerbs) {
  ServerOptions options;
  SofosServer server(&engine_, options);
  SOFOS_ASSERT_OK(server.Start());
  BlockingClient client;
  SOFOS_ASSERT_OK(client.Connect(server.port()));

  // Warm the endpoints so METRICS has figures for each counter family.
  std::string sparql = engine_.facet().CanonicalQuerySparql(1);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto q1, client.Roundtrip("QUERY " + sparql));
  ASSERT_TRUE(q1.ok()) << q1.header;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto q2, client.Roundtrip("QUERY " + sparql));
  ASSERT_TRUE(q2.ok()) << q2.header;  // cache hit
  SOFOS_ASSERT_OK_AND_ASSIGN(auto upd, client.Roundtrip("UPDATE 1 0.05"));
  ASSERT_TRUE(upd.ok()) << upd.header;

  // ANALYZE: defaults to the root view and returns the annotated plan.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto analyze, client.Roundtrip("ANALYZE"));
  ASSERT_TRUE(analyze.ok()) << analyze.header;
  std::string analyze_body = analyze.BodyText();
  EXPECT_NE(analyze_body.find("(actual rows="), std::string::npos);
  EXPECT_NE(analyze_body.find("TOTALS output_rows="), std::string::npos);

  // ANALYZE of a query a materialized view answers reports the routing
  // decision the real QUERY path would take.
  std::vector<uint32_t> masks = engine_.MaterializedMasks();
  ASSERT_FALSE(masks.empty());
  std::string routed_sparql = engine_.facet().CanonicalQuerySparql(masks[0]);
  SOFOS_ASSERT_OK_AND_ASSIGN(auto analyze2,
                             client.Roundtrip("ANALYZE " + routed_sparql));
  ASSERT_TRUE(analyze2.ok()) << analyze2.header;
  std::string analyze2_body = analyze2.BodyText();
  EXPECT_NE(analyze2_body.find("ROUTED view="), std::string::npos)
      << analyze2_body;
  EXPECT_NE(analyze2_body.find("TOTALS"), std::string::npos);

  // TRACE: executes and returns the span dump; the argument is required.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto trace, client.Roundtrip("TRACE " + sparql));
  ASSERT_TRUE(trace.ok()) << trace.header;
  EXPECT_NE(trace.header.find("spans="), std::string::npos);
  std::string trace_body = trace.BodyText();
  EXPECT_EQ(trace_body.rfind("[", 0), 0u) << trace_body;
  EXPECT_NE(trace_body.find("\"snapshot.answer\""), std::string::npos)
      << trace_body;
  SOFOS_ASSERT_OK_AND_ASSIGN(auto bare, client.Roundtrip("TRACE"));
  EXPECT_FALSE(bare.ok());

  // METRICS: the whole registry in Prometheus text — engine phases, server
  // endpoints, cache counters, publish latency, maintenance counters.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto metrics, client.Roundtrip("METRICS"));
  ASSERT_TRUE(metrics.ok()) << metrics.header;
  std::string body = metrics.BodyText();
  for (const char* name : {
           "sofos_engine_queries_total",
           "sofos_engine_parse_micros",
           "sofos_engine_exec_micros",
           "sofos_engine_maintain_micros",
           "sofos_engine_publish_micros",
           "sofos_engine_updates_total",
           "sofos_engine_epoch",
           "sofos_engine_staleness_drift",
           "sofos_server_requests_total{endpoint=\"query\"}",
           "sofos_server_requests_total{endpoint=\"update\"}",
           "sofos_server_request_micros{endpoint=\"query\"",
           "sofos_server_accepted_total",
           "sofos_server_cache_hits_total",
           "sofos_cache_hits_total",
           "sofos_cache_misses_total",
           "sofos_cache_ttl_expired_total",
           "sofos_cache_age_at_hit_micros",
       }) {
    EXPECT_NE(body.find(name), std::string::npos) << "missing " << name;
  }

  // STATS carries the registry snapshot alongside the legacy figures.
  SOFOS_ASSERT_OK_AND_ASSIGN(auto stats, client.Roundtrip("STATS"));
  ASSERT_TRUE(stats.ok()) << stats.header;
  EXPECT_NE(stats.body[0].find("\"registry\""), std::string::npos);
  EXPECT_NE(stats.body[0].find("cache_ttl_expired"), std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace sofos
