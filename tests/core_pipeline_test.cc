#include <set>

#include "core/engine.h"
#include "core/training.h"
#include "gtest/gtest.h"
#include "rdf/vocab.h"
#include "sparql/parser.h"
#include "tests/core_test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace core {
namespace {

using testing::ExpectSameAnswers;
using testing::MustProfile;
using testing::SetUpEngine;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetUpEngine(&engine_, "geopop");
    MustProfile(&engine_);
  }

  SofosEngine engine_;
};

// ------------------------------------------------------------ materializer

TEST_F(PipelineTest, MaterializeAddsEncodedTriples) {
  uint64_t before = engine_.CurrentTriples();
  auto views = engine_.MaterializeViews({0b0011});
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  ASSERT_EQ(views->size(), 1u);
  const MaterializedView& view = (*views)[0];
  EXPECT_EQ(view.mask, 0b0011u);
  EXPECT_GT(view.rows, 0u);
  EXPECT_EQ(view.triples_added, view.rows * (2 + 3));  // 2 dims + 3 fixed
  EXPECT_EQ(engine_.CurrentTriples(), before + view.triples_added);
  EXPECT_TRUE(engine_.store()->finalized());
}

TEST_F(PipelineTest, MaterializedTriplesMatchProfilePrediction) {
  const LatticeProfile* profile = engine_.profile();
  auto views = engine_.MaterializeViews({0b0101, 0b0010});
  ASSERT_TRUE(views.ok());
  for (const MaterializedView& view : *views) {
    EXPECT_EQ(view.triples_added, profile->ForMask(view.mask).encoded_triples)
        << engine_.facet().MaskLabel(view.mask);
    EXPECT_EQ(view.rows, profile->ForMask(view.mask).result_rows);
  }
}

TEST_F(PipelineTest, MaterializeTwiceFails) {
  ASSERT_TRUE(engine_.MaterializeViews({0b0011}).ok());
  auto again = engine_.MaterializeViews({0b0011});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(PipelineTest, DropViewsRestoresBaseGraph) {
  uint64_t base = engine_.CurrentTriples();
  ASSERT_TRUE(engine_.MaterializeViews({0b0011, 0b1100}).ok());
  EXPECT_GT(engine_.CurrentTriples(), base);
  EXPECT_GT(engine_.StorageAmplification(), 1.0);
  SOFOS_ASSERT_OK(engine_.DropMaterializedViews());
  EXPECT_EQ(engine_.CurrentTriples(), base);
  EXPECT_TRUE(engine_.materialized().empty());
  EXPECT_DOUBLE_EQ(engine_.StorageAmplification(), 1.0);
}

TEST_F(PipelineTest, OriginalQueriesUnaffectedByMaterialization) {
  // The sofos: encoding is disjoint from application predicates, so base
  // queries over G+ return exactly the answers they returned over G.
  WorkloadQuery probe;
  probe.id = "probe";
  probe.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:population ?pop .\n"
      "} GROUP BY ?country";
  auto before = engine_.Answer(probe, /*allow_views=*/false);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine_.MaterializeViews({engine_.facet().FullMask(), 0}).ok());
  auto after = engine_.Answer(probe, /*allow_views=*/false);
  ASSERT_TRUE(after.ok());
  ExpectSameAnswers(before->result, after->result, "base query over G vs G+");
}

// --------------------------------------------------------------- rewriter

TEST_F(PipelineTest, PickBestViewRespectsAnswerability) {
  Rewriter rewriter(&engine_.facet());
  QuerySignature sig;
  sig.group_mask = 0b0011;
  // Only a disjoint view available: no pick.
  auto none = rewriter.PickBestView(sig, {0b1100}, *engine_.profile());
  EXPECT_FALSE(none.has_value());
  // Superset view available: picked.
  auto some = rewriter.PickBestView(sig, {0b1100, 0b0111}, *engine_.profile());
  ASSERT_TRUE(some.has_value());
  EXPECT_EQ(*some, 0b0111u);
}

TEST_F(PipelineTest, PickBestViewPrefersSmallest) {
  Rewriter rewriter(&engine_.facet());
  QuerySignature sig;
  sig.group_mask = 0b0001;
  // Both the full view and {continent,country} can answer; the smaller
  // (fewer rows) wins under the default routing heuristic.
  auto pick = rewriter.PickBestView(sig, {0b1111, 0b0011}, *engine_.profile());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0b0011u);
}

TEST_F(PipelineTest, RewriteTargetsViewEncoding) {
  Rewriter rewriter(&engine_.facet());
  QuerySignature sig;
  sig.group_mask = 0b0010;  // group by country
  auto rewritten = rewriter.RewriteToView(sig, 0b0011);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_NE(rewritten->find(std::string(vocab::kSofosView)), std::string::npos);
  EXPECT_NE(rewritten->find("dim_country"), std::string::npos);
  EXPECT_NE(rewritten->find("SUM(?__v)"), std::string::npos);
  EXPECT_NE(rewritten->find("GROUP BY ?country"), std::string::npos);
  // The rewritten query parses.
  EXPECT_TRUE(sparql::Parser::Parse(*rewritten).ok());
}

TEST_F(PipelineTest, RewriteRejectsNonAnswerableView) {
  Rewriter rewriter(&engine_.facet());
  QuerySignature sig;
  sig.group_mask = 0b0100;
  EXPECT_FALSE(rewriter.RewriteToView(sig, 0b0011).ok());
}

TEST_F(PipelineTest, AnalyzeQueryExtractsSignature) {
  Rewriter rewriter(&engine_.facet());
  auto query = sparql::Parser::Parse(
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "  FILTER(?year = 2018)\n"
      "} GROUP BY ?country");
  ASSERT_TRUE(query.ok());
  auto sig = rewriter.AnalyzeQuery(*query);
  ASSERT_TRUE(sig.ok()) << sig.status().ToString();
  EXPECT_EQ(sig->group_mask, 0b0010u);   // country is dim 1
  EXPECT_EQ(sig->filter_mask, 0b1000u);  // year is dim 3
  ASSERT_EQ(sig->constraints.size(), 1u);
  EXPECT_EQ(sig->constraints[0].dim, 3);
}

TEST_F(PipelineTest, AnalyzeQueryRejectsNonDimGroup) {
  Rewriter rewriter(&engine_.facet());
  auto query = sparql::Parser::Parse(
      "SELECT ?obs (SUM(?pop) AS ?agg) WHERE { ?obs <http://geo/population> ?pop } "
      "GROUP BY ?obs");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(rewriter.AnalyzeQuery(*query).ok());
}

// ------------------------------------------------- end-to-end equivalence

TEST_F(PipelineTest, ViewAnswersMatchBaseAnswers) {
  // The central correctness property of the whole system: a query answered
  // from a materialized view returns the same result as over the base graph.
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 25;
  options.seed = 7;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  // Baseline answers (no views).
  std::vector<sparql::QueryResult> baseline;
  for (const auto& query : *queries) {
    auto outcome = engine_.Answer(query, /*allow_views=*/false);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString() << "\n" << query.sparql;
    baseline.push_back(std::move(outcome->result));
  }

  // Materialize the full lattice → every query must route to a view.
  Lattice lattice(&engine_.facet());
  ASSERT_TRUE(engine_.MaterializeViews(lattice.AllMasks()).ok());
  for (size_t i = 0; i < queries->size(); ++i) {
    auto outcome = engine_.Answer((*queries)[i], /*allow_views=*/true);
    ASSERT_TRUE(outcome.ok())
        << outcome.status().ToString() << "\n" << outcome->executed_sparql;
    EXPECT_TRUE(outcome->used_view) << (*queries)[i].sparql;
    ExpectSameAnswers(std::move(baseline[i]), std::move(outcome->result),
                      "query " + (*queries)[i].id + "\n" +
                          (*queries)[i].sparql + "\nrewritten:\n" +
                          outcome->executed_sparql);
  }
}

TEST_F(PipelineTest, PartialSelectionRoutesOrFallsBack) {
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 20;
  options.seed = 11;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());

  std::vector<sparql::QueryResult> baseline;
  for (const auto& query : *queries) {
    auto outcome = engine_.Answer(query, false);
    ASSERT_TRUE(outcome.ok());
    baseline.push_back(std::move(outcome->result));
  }

  // Only two views available.
  ASSERT_TRUE(engine_.MaterializeViews({0b0111, 0b0011}).ok());
  size_t hits = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    const auto& query = (*queries)[i];
    auto outcome = engine_.Answer(query, true);
    ASSERT_TRUE(outcome.ok()) << outcome->executed_sparql;
    uint32_t needed = query.signature.NeededMask();
    bool answerable = Lattice::CanAnswer(0b0111, needed) ||
                      Lattice::CanAnswer(0b0011, needed);
    EXPECT_EQ(outcome->used_view, answerable) << query.sparql;
    if (outcome->used_view) ++hits;
    ExpectSameAnswers(std::move(baseline[i]), std::move(outcome->result),
                      "query " + query.id);
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, queries->size());
}

TEST_F(PipelineTest, RunWorkloadReportsStatistics) {
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 10;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());
  ASSERT_TRUE(engine_.MaterializeViews({engine_.facet().FullMask()}).ok());

  auto report = engine_.RunWorkload(*queries, true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcomes.size(), 10u);
  EXPECT_EQ(report->view_hits, 10u);  // the full view answers everything
  EXPECT_GT(report->mean_micros, 0.0);
  EXPECT_GT(report->median_micros, 0.0);
  EXPECT_GE(report->p95_micros, report->median_micros);
  EXPECT_NE(report->Summary().find("queries=10"), std::string::npos);
}

// -------------------------------------------------- AVG roll-up exactness

class AvgPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kTiny, 3, &store);
    ASSERT_TRUE(spec.ok());
    // Same pattern, AVG aggregation.
    std::string avg = spec->facet_sparql;
    size_t pos = avg.find("SUM");
    avg.replace(pos, 3, "AVG");
    auto facet = Facet::FromSparql(avg, "geopop_avg", spec->dim_labels);
    ASSERT_TRUE(facet.ok()) << facet.status().ToString();
    SOFOS_ASSERT_OK(engine_.LoadStore(std::move(store)));
    SOFOS_ASSERT_OK(engine_.SetFacet(std::move(facet).value()));
    MustProfile(&engine_);
  }

  SofosEngine engine_;
};

TEST_F(AvgPipelineTest, AvgRollupIsExact) {
  workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
  workload::WorkloadOptions options;
  options.num_queries = 15;
  options.seed = 13;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());

  std::vector<sparql::QueryResult> baseline;
  for (const auto& query : *queries) {
    auto outcome = engine_.Answer(query, false);
    ASSERT_TRUE(outcome.ok()) << query.sparql;
    baseline.push_back(std::move(outcome->result));
  }
  Lattice lattice(&engine_.facet());
  ASSERT_TRUE(engine_.MaterializeViews(lattice.AllMasks()).ok());
  for (size_t i = 0; i < queries->size(); ++i) {
    auto outcome = engine_.Answer((*queries)[i], true);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->used_view);
    ExpectSameAnswers(std::move(baseline[i]), std::move(outcome->result),
                      "AVG query " + (*queries)[i].id + "\nrewritten:\n" +
                          outcome->executed_sparql);
  }
}

}  // namespace
}  // namespace core
}  // namespace sofos
