#include <set>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "gtest/gtest.h"

namespace sofos {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::NotFound("missing").WithContext("loading file");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "loading file: missing");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("anything");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SOFOS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusConversionBecomesInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto maker = [](bool fail) -> Result<std::string> {
    if (fail) return Status::InvalidArgument("no");
    return std::string("yes");
  };
  auto wrapper = [&](bool fail) -> Result<size_t> {
    SOFOS_ASSIGN_OR_RETURN(std::string s, maker(fail));
    return s.size();
  };
  ASSERT_TRUE(wrapper(false).ok());
  EXPECT_EQ(wrapper(false).value(), 3u);
  EXPECT_EQ(wrapper(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitBasic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = StrSplit(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(pieces, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StrStartsWith("http://x", "http://"));
  EXPECT_FALSE(StrStartsWith("ht", "http://"));
  EXPECT_TRUE(StrEndsWith("file.ttl", ".ttl"));
  EXPECT_FALSE(StrEndsWith("ttl", ".ttl"));
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(StrToLower("SeLeCt"), "select");
  EXPECT_EQ(StrToUpper("select"), "SELECT");
  EXPECT_TRUE(StrEqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(StrEqualsIgnoreCase("GROUPS", "group"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("+13").value(), 13);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
}

TEST(StringUtilTest, TurtleEscapeRoundTrip) {
  std::string raw = "line1\nline2\t\"quoted\"\\slash";
  std::string escaped = EscapeTurtleString(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  auto back = UnescapeTurtleString(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(StringUtilTest, UnescapeRejectsBadEscapes) {
  EXPECT_FALSE(UnescapeTurtleString("bad\\q").ok());
  EXPECT_FALSE(UnescapeTurtleString("dangling\\").ok());
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StringUtilTest, FormatMicros) {
  EXPECT_EQ(FormatMicros(500.0), "500.0 us");
  EXPECT_EQ(FormatMicros(1500.0), "1.50 ms");
  EXPECT_EQ(FormatMicros(2.5e6), "2.50 s");
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
}

// ---------------------------------------------------------------- Hashing

TEST(HashTest, Fnv1aIsDeterministic) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64(""), 0u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalHasApproximatelyRightMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(13);
  ZipfSampler sampler(100, 1.2);
  int rank0 = 0, total = 5000;
  for (int i = 0; i < total; ++i) {
    if (sampler.Sample(&rng) == 0) ++rank0;
  }
  // Rank 0 should be sampled far more often than 1/100 of the time.
  EXPECT_GT(rank0, total / 20);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(17);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(19);
  auto sample = rng.SampleIndices(50, 20);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, SampleIndicesFullRange) {
  Rng rng(21);
  auto sample = rng.SampleIndices(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(29);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

// ---------------------------------------------------------------- Tables

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "count"});
  table.AddRow({"alpha", "10"});
  table.AddRow({"b", "2"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, MarkdownOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::string out = table.ToString(TablePrinter::Style::kMarkdown);
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToString(TablePrinter::Style::kCsv), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::string out = table.ToString(TablePrinter::Style::kCsv);
  EXPECT_EQ(out, "a,b,c\nonly,,\n");
}

TEST(TablePrinterTest, CellHelpers) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Cell(int64_t{-42}), "-42");
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  double t1 = timer.ElapsedMicros();
  double t2 = timer.ElapsedMicros();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace sofos
