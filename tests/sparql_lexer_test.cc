#include "sparql/lexer.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

std::vector<Token> LexOk(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = LexOk("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, Variables) {
  auto tokens = LexOk("?x $y ?longName42");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kVar);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "y");
  EXPECT_EQ(tokens[2].text, "longName42");
}

TEST(LexerTest, IriRef) {
  auto tokens = LexOk("<http://example.org/a#b>");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kIriRef);
  EXPECT_EQ(tokens[0].text, "http://example.org/a#b");
}

TEST(LexerTest, LessThanVsIri) {
  // "?x < 5" must lex '<' as an operator, not the start of an IRI.
  auto tokens = LexOk("?x < 5");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kLt);
  EXPECT_EQ(tokens[2].type, TokenType::kInteger);
}

TEST(LexerTest, LessThanEqual) {
  auto tokens = LexOk("?x <= ?y");
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = LexOk("= != > >= && || !");
  EXPECT_EQ(tokens[0].type, TokenType::kEq);
  EXPECT_EQ(tokens[1].type, TokenType::kNe);
  EXPECT_EQ(tokens[2].type, TokenType::kGt);
  EXPECT_EQ(tokens[3].type, TokenType::kGe);
  EXPECT_EQ(tokens[4].type, TokenType::kAndAnd);
  EXPECT_EQ(tokens[5].type, TokenType::kOrOr);
  EXPECT_EQ(tokens[6].type, TokenType::kBang);
}

TEST(LexerTest, Strings) {
  auto tokens = LexOk(R"("hello \"world\"")");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello \"world\"");
}

TEST(LexerTest, StringWithLangTag) {
  auto tokens = LexOk("\"chat\"@fr");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[1].type, TokenType::kLangTag);
  EXPECT_EQ(tokens[1].text, "fr");
}

TEST(LexerTest, TypedLiteralSeparator) {
  auto tokens = LexOk("\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(tokens[1].type, TokenType::kDtypeSep);
  EXPECT_EQ(tokens[2].type, TokenType::kIriRef);
}

TEST(LexerTest, Numbers) {
  auto tokens = LexOk("42 3.25 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kDouble);
  EXPECT_EQ(tokens[2].type, TokenType::kDouble);
  EXPECT_EQ(tokens[3].type, TokenType::kDouble);
}

TEST(LexerTest, KeywordsAreIdents) {
  auto tokens = LexOk("SELECT where GROUP");
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "where");
}

TEST(LexerTest, PrefixedNames) {
  auto tokens = LexOk("foaf:name :local _:blank");
  EXPECT_EQ(tokens[0].type, TokenType::kPname);
  EXPECT_EQ(tokens[0].text, "foaf:name");
  EXPECT_EQ(tokens[1].type, TokenType::kPname);
  EXPECT_EQ(tokens[1].text, ":local");
  EXPECT_EQ(tokens[2].type, TokenType::kPname);
  EXPECT_EQ(tokens[2].text, "_:blank");
}

TEST(LexerTest, AKeyword) {
  auto tokens = LexOk("?s a ?type");
  EXPECT_EQ(tokens[1].type, TokenType::kA);
}

TEST(LexerTest, Punctuation) {
  auto tokens = LexOk("( ) { } . ; , * / + -");
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kRParen);
  EXPECT_EQ(tokens[2].type, TokenType::kLBrace);
  EXPECT_EQ(tokens[3].type, TokenType::kRBrace);
  EXPECT_EQ(tokens[4].type, TokenType::kDot);
  EXPECT_EQ(tokens[5].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[6].type, TokenType::kComma);
  EXPECT_EQ(tokens[7].type, TokenType::kStar);
  EXPECT_EQ(tokens[8].type, TokenType::kSlash);
  EXPECT_EQ(tokens[9].type, TokenType::kPlus);
  EXPECT_EQ(tokens[10].type, TokenType::kMinus);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = LexOk("?x # comment to end of line\n?y");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "y");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = LexOk("?a\n  ?b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, ErrorUnterminatedString) {
  Lexer lexer("\"never closed");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, ErrorLoneAmpersand) {
  Lexer lexer("?x & ?y");
  auto result = lexer.Tokenize();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("&&"), std::string::npos);
}

TEST(LexerTest, ErrorLoneCaret) {
  Lexer lexer("\"x\"^<http://t>");
  EXPECT_FALSE(Lexer("\"x\"^<http://t>").Tokenize().ok());
}

TEST(LexerTest, ErrorEmptyVariable) {
  EXPECT_FALSE(Lexer("? x").Tokenize().ok());
}

}  // namespace
}  // namespace sparql
}  // namespace sofos
