#include <algorithm>

#include "gtest/gtest.h"
#include "sparql/query_engine.h"
#include "tests/test_util.h"

namespace sofos {
namespace {

using sparql::QueryEngine;
using sparql::QueryResult;
using testing::BuildFigure1Graph;
using testing::MustExecute;

Term Ex(const std::string& s) { return Term::Iri("http://example.org/" + s); }

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override { BuildFigure1Graph(&store_); }
  TripleStore store_;
};

TEST_F(Figure1Test, SingleWildcardPattern) {
  QueryResult r = MustExecute(&store_, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
  EXPECT_EQ(r.NumRows(), store_.NumTriples());
  EXPECT_EQ(r.NumCols(), 3u);
}

TEST_F(Figure1Test, BoundPredicateScan) {
  QueryResult r = MustExecute(
      &store_, "SELECT ?c ?l WHERE { ?c <http://example.org/language> ?l }");
  EXPECT_EQ(r.NumRows(), 5u);  // Canada has two languages
}

TEST_F(Figure1Test, BoundObjectScan) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/language> \"French\" }");
  ASSERT_EQ(r.NumRows(), 2u);  // France, Canada
}

TEST_F(Figure1Test, JoinTwoPatterns) {
  // Countries in the EU with their language.
  QueryResult r = MustExecute(&store_,
                              "SELECT ?c ?l WHERE { "
                              "?c <http://example.org/partOf> <http://example.org/EU> . "
                              "?c <http://example.org/language> ?l }");
  EXPECT_EQ(r.NumRows(), 3u);  // France, Germany, Italy
}

TEST_F(Figure1Test, ThreeWayJoin) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?name ?pop WHERE { "
      "?c <http://example.org/language> \"French\" . "
      "?c <http://example.org/name> ?name . "
      "?c <http://example.org/population> ?pop }");
  ASSERT_EQ(r.NumRows(), 2u);
}

TEST_F(Figure1Test, EmptyResultForAbsentConstant) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/language> \"Klingon\" }");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(Figure1Test, EmptyResultForAbsentPredicate) {
  QueryResult r = MustExecute(
      &store_, "SELECT ?c WHERE { ?c <http://example.org/nosuch> ?x }");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(Figure1Test, FilterNumericComparison) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/population> ?p . "
      "FILTER(?p > 61000000) }");
  // France (67M), Germany (82M).
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(Figure1Test, FilterIriEquality) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/partOf> ?cont . "
      "FILTER(?cont = <http://example.org/NA>) }");
  EXPECT_EQ(r.NumRows(), 1u);  // Canada
}

TEST_F(Figure1Test, FilterStringEquality) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/language> ?l . "
      "FILTER(?l = \"German\") }");
  EXPECT_EQ(r.NumRows(), 1u);
}

TEST_F(Figure1Test, FilterConjunctionAndDisjunction) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/language> ?l . "
      "?c <http://example.org/population> ?p . "
      "FILTER((?l = \"French\" && ?p > 40000000) || ?l = \"Italian\") }");
  // France (French, 67M) and Italy.
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(Figure1Test, FilterNegation) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c ?l WHERE { ?c <http://example.org/language> ?l . "
      "FILTER(!(?l = \"French\")) }");
  EXPECT_EQ(r.NumRows(), 3u);  // German, Italian, English
}

TEST_F(Figure1Test, FilterArithmetic) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/population> ?p . "
      "FILTER(?p / 1000000 >= 80) }");
  EXPECT_EQ(r.NumRows(), 1u);  // Germany
}

TEST_F(Figure1Test, FilterRegex) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/name> ?n . "
      "FILTER(REGEX(?n, \"^It\")) }");
  EXPECT_EQ(r.NumRows(), 1u);
}

TEST_F(Figure1Test, FilterTypeErrorDropsRow) {
  // Comparing a string-valued language with a number is a type error; SPARQL
  // drops those rows rather than failing the query.
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?c WHERE { ?c <http://example.org/language> ?l . FILTER(?l > 5) }");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(Figure1Test, DistinctDeduplicates) {
  QueryResult all = MustExecute(
      &store_, "SELECT ?cont WHERE { ?c <http://example.org/partOf> ?cont }");
  QueryResult distinct = MustExecute(
      &store_,
      "SELECT DISTINCT ?cont WHERE { ?c <http://example.org/partOf> ?cont }");
  EXPECT_EQ(all.NumRows(), 4u);
  EXPECT_EQ(distinct.NumRows(), 2u);  // EU, NA
}

TEST_F(Figure1Test, OrderByAscendingAndDescending) {
  sparql::QueryEngine engine(&store_);
  auto asc = engine.Execute(
      "SELECT DISTINCT ?p WHERE { ?c <http://example.org/population> ?p } "
      "ORDER BY ?p");
  ASSERT_TRUE(asc.ok());
  ASSERT_EQ(asc->NumRows(), 4u);
  EXPECT_EQ(asc->rows[0][0].AsInt64().value(), 37000000);
  EXPECT_EQ(asc->rows[3][0].AsInt64().value(), 82000000);

  auto desc = engine.Execute(
      "SELECT DISTINCT ?p WHERE { ?c <http://example.org/population> ?p } "
      "ORDER BY DESC(?p)");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->rows[0][0].AsInt64().value(), 82000000);
}

TEST_F(Figure1Test, LimitAndOffset) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT DISTINCT ?p WHERE { ?c <http://example.org/population> ?p } "
      "ORDER BY ?p LIMIT 2 OFFSET 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt64().value(), 60000000);
  EXPECT_EQ(r->rows[1][0].AsInt64().value(), 67000000);
}

TEST_F(Figure1Test, SelectStarBindsAllPatternVars) {
  QueryResult r = MustExecute(
      &store_, "SELECT * WHERE { ?c <http://example.org/language> ?l }");
  EXPECT_EQ(r.NumCols(), 2u);
}

TEST_F(Figure1Test, ProjectionExpression) {
  sparql::QueryEngine engine(&store_);
  auto r = engine.Execute(
      "SELECT ?c ((?p / 1000000) AS ?millions) WHERE "
      "{ ?c <http://example.org/population> ?p } ORDER BY DESC(?millions) LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble().value(), 82.0);
}

TEST_F(Figure1Test, RepeatedVariableInPattern) {
  // ?x partOf ?x can never match (no reflexive edges).
  QueryResult r = MustExecute(
      &store_, "SELECT ?x WHERE { ?x <http://example.org/partOf> ?x }");
  EXPECT_EQ(r.NumRows(), 0u);

  // Add a reflexive edge and re-finalize: now exactly one row.
  store_.Add(Ex("Loop"), Ex("partOf"), Ex("Loop"));
  store_.Finalize();
  QueryResult r2 = MustExecute(
      &store_, "SELECT ?x WHERE { ?x <http://example.org/partOf> ?x }");
  EXPECT_EQ(r2.NumRows(), 1u);
}

TEST_F(Figure1Test, CrossProductWhenDisconnected) {
  QueryResult r = MustExecute(
      &store_,
      "SELECT ?a ?b WHERE { ?a <http://example.org/partOf> <http://example.org/NA> . "
      "?b <http://example.org/partOf> <http://example.org/EU> }");
  EXPECT_EQ(r.NumRows(), 3u);  // 1 x 3
}

TEST_F(Figure1Test, ExplainShowsPlan) {
  QueryEngine engine(&store_);
  auto explain = engine.Explain(
      "SELECT ?c WHERE { ?c <http://example.org/language> \"French\" . "
      "?c <http://example.org/population> ?p . FILTER(?p > 1) }");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("SCAN"), std::string::npos);
  EXPECT_NE(explain->find("IJOIN"), std::string::npos);
  EXPECT_NE(explain->find("FILTER"), std::string::npos);
}

TEST_F(Figure1Test, PlannerStartsWithMostSelectivePattern) {
  QueryEngine engine(&store_);
  // "language French" (2 rows) is more selective than "population ?p" (4
  // subjects / 5 rows); it must be scanned first.
  auto explain = engine.Explain(
      "SELECT ?c WHERE { ?c <http://example.org/population> ?p . "
      "?c <http://example.org/language> \"French\" }");
  ASSERT_TRUE(explain.ok());
  size_t scan_pos = explain->find("SCAN");
  ASSERT_NE(scan_pos, std::string::npos);
  EXPECT_NE(explain->find("French", scan_pos), std::string::npos);
}

TEST_F(Figure1Test, StatsCountScannedRows) {
  QueryEngine engine(&store_);
  auto r = engine.Execute("SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.rows_scanned, store_.NumTriples());
  EXPECT_EQ(r->stats.output_rows, store_.NumTriples());
}

TEST_F(Figure1Test, ErrorUnfinalizedStore) {
  TripleStore fresh;
  fresh.Add(Ex("a"), Ex("b"), Ex("c"));
  QueryEngine engine(&fresh);
  auto r = engine.Execute("SELECT ?s WHERE { ?s ?p ?o }");
  EXPECT_FALSE(r.ok());
}

TEST_F(Figure1Test, ErrorParseFailurePropagates) {
  QueryEngine engine(&store_);
  EXPECT_FALSE(engine.Execute("SELEC ?s WHERE { ?s ?p ?o }").ok());
}

TEST_F(Figure1Test, ResultToTableRenders) {
  QueryResult r = MustExecute(
      &store_, "SELECT ?c WHERE { ?c <http://example.org/language> \"French\" }");
  std::string table = r.ToTable();
  EXPECT_NE(table.find("?c"), std::string::npos);
  EXPECT_NE(table.find("France"), std::string::npos);
}

}  // namespace
}  // namespace sofos
