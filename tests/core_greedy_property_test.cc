/// Algorithmic property tests for the greedy selector on synthetic lattice
/// profiles (no store, no queries): cross-checks against the exhaustive
/// oracle on lattices too large to enumerate by hand, and validates the
/// classic submodularity behaviour of the HRU benefit.

#include <cmath>

#include "common/rng.h"
#include "core/selection.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sofos {
namespace core {
namespace {

/// Builds a synthetic facet with `dims` dimensions (the pattern content is
/// irrelevant for selection — only the lattice structure matters).
Facet SyntheticFacet(int dims) {
  std::string select = "SELECT";
  std::string group;
  std::string pattern;
  for (int d = 0; d < dims; ++d) {
    std::string var = "?d" + std::to_string(d);
    select += " " + var;
    group += " " + var;
    pattern += "  ?e <http://p/" + std::to_string(d) + "> " + var + " .\n";
  }
  select += " (SUM(?v) AS ?agg)";
  pattern += "  ?e <http://p/v> ?v .\n";
  std::string sparql = select + " WHERE {\n" + pattern + "} GROUP BY" + group;
  auto facet = Facet::FromSparql(sparql, "synthetic");
  EXPECT_TRUE(facet.ok()) << facet.status().ToString();
  return std::move(facet).value();
}

/// A plausible random profile: view sizes grow with level and with a
/// random per-view skew factor, capped by the base size.
LatticeProfile SyntheticProfile(const Facet& facet, Rng* rng) {
  LatticeProfile profile;
  size_t n = 1ull << facet.num_dims();
  profile.views.resize(n);
  profile.base_triples = 1000000;
  profile.base_nodes = 200000;
  profile.base_pattern_rows = 500000;
  for (uint32_t mask = 0; mask < n; ++mask) {
    ViewStats& stats = profile.views[mask];
    stats.mask = mask;
    double level = Lattice::Level(mask);
    double base = std::pow(8.0, level) * rng->UniformDouble(0.5, 2.0);
    stats.result_rows = static_cast<uint64_t>(
        std::min(base, static_cast<double>(profile.base_pattern_rows)));
    if (mask == 0) stats.result_rows = 1;
    stats.encoded_triples = stats.result_rows * (Lattice::Level(mask) + 3);
    stats.encoded_nodes = stats.result_rows * 2 + 1;
    stats.encoded_bytes = stats.encoded_triples * 72;
  }
  return profile;
}

/// Estimated workload cost of a selection under a cost model (the quantity
/// the greedy minimizes).
double ModelScore(const std::vector<uint32_t>& views, const Lattice& lattice,
                  const LatticeProfile& profile, const CostModel& model) {
  double total = 0;
  size_t n = lattice.size();
  for (uint32_t w = 0; w < n; ++w) {
    double cheapest = model.BaseCost(profile);
    for (uint32_t v : views) {
      if (Lattice::CanAnswer(v, w)) {
        cheapest = std::min(cheapest, model.ViewCost(v, profile));
      }
    }
    total += cheapest / static_cast<double>(n);
  }
  return total;
}

class GreedyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyPropertyTest, GreedyBeatsRandomOnSixDimLattices) {
  Rng rng(GetParam());
  Facet facet = SyntheticFacet(6);  // 64 views
  Lattice lattice(&facet);
  LatticeProfile profile = SyntheticProfile(facet, &rng);
  TripleCountCostModel model;
  GreedySelector selector(&lattice, &profile, &model);

  for (size_t k : {2, 4, 8}) {
    SelectionResult greedy = selector.SelectTopK(k);
    ASSERT_EQ(greedy.views.size(), k);
    double greedy_score = ModelScore(greedy.views, lattice, profile, model);

    // 20 random k-subsets: greedy must beat (almost) all of them; with a
    // deterministic margin we require it beats the random *average*.
    double random_total = 0;
    RandomCostModel random_model;
    GreedySelector random_selector(&lattice, &profile, &random_model);
    for (int trial = 0; trial < 20; ++trial) {
      SelectionResult random = random_selector.SelectTopK(k, nullptr,
                                                          GetParam() * 100 + trial);
      random_total += ModelScore(random.views, lattice, profile, model);
    }
    EXPECT_LT(greedy_score, random_total / 20.0)
        << "k=" << k << ": greedy must beat the average random selection";
  }
}

TEST_P(GreedyPropertyTest, GreedyNearOracleOnFourDimLattices) {
  Rng rng(GetParam() + 7);
  Facet facet = SyntheticFacet(4);  // 16 views: oracle enumerable
  Lattice lattice(&facet);
  LatticeProfile profile = SyntheticProfile(facet, &rng);
  TripleCountCostModel model;
  GreedySelector selector(&lattice, &profile, &model);

  // Oracle under the SAME cost model (the greedy optimizes exactly this, so
  // the 1-1/e guarantee of submodular maximization applies to the benefit;
  // in practice greedy is near-optimal on these profiles).
  const size_t n = lattice.size();
  std::vector<std::vector<double>> cost(n, std::vector<double>(n + 1));
  for (uint32_t w = 0; w < n; ++w) {
    for (uint32_t v = 0; v < n; ++v) {
      cost[w][v] = Lattice::CanAnswer(v, w) ? model.ViewCost(v, profile) : 1e18;
    }
    cost[w][n] = model.BaseCost(profile);
  }

  for (size_t k : {1, 2, 3}) {
    SelectionResult greedy = selector.SelectTopK(k);
    double greedy_score = ModelScore(greedy.views, lattice, profile, model);
    auto oracle = OracleSelection(lattice, k, cost);
    ASSERT_TRUE(oracle.ok());
    double oracle_score = ModelScore(oracle->views, lattice, profile, model);
    EXPECT_LE(greedy_score, oracle_score * 1.35)
        << "k=" << k << ": greedy regret above 35%";
    EXPECT_GE(greedy_score, oracle_score - 1e-9) << "oracle must be optimal";
  }
}

TEST_P(GreedyPropertyTest, MonotoneInK) {
  // Adding budget never makes the selected configuration worse.
  Rng rng(GetParam() + 13);
  Facet facet = SyntheticFacet(5);
  Lattice lattice(&facet);
  LatticeProfile profile = SyntheticProfile(facet, &rng);
  AggValueCountCostModel model;
  GreedySelector selector(&lattice, &profile, &model);

  double last = std::numeric_limits<double>::infinity();
  for (size_t k = 1; k <= 8; ++k) {
    SelectionResult selection = selector.SelectTopK(k);
    double score = ModelScore(selection.views, lattice, profile, model);
    EXPECT_LE(score, last + 1e-9) << "k=" << k;
    last = score;
  }
}

TEST_P(GreedyPropertyTest, GreedyPrefixProperty) {
  // HRU greedy is incremental: the k-selection is a prefix of the
  // (k+1)-selection (with deterministic tie-breaking).
  Rng rng(GetParam() + 29);
  Facet facet = SyntheticFacet(5);
  Lattice lattice(&facet);
  LatticeProfile profile = SyntheticProfile(facet, &rng);
  TripleCountCostModel model;
  GreedySelector selector(&lattice, &profile, &model);

  SelectionResult small = selector.SelectTopK(3);
  SelectionResult large = selector.SelectTopK(6);
  ASSERT_GE(large.views.size(), small.views.size());
  for (size_t i = 0; i < small.views.size(); ++i) {
    EXPECT_EQ(small.views[i], large.views[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace core
}  // namespace sofos
