#include <cmath>

#include "core/training.h"
#include "gtest/gtest.h"
#include "learned/features.h"
#include "learned/mlp.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace learned {
namespace {

TEST(MlpTest, PredictsConstantAfterTrainingOnConstant) {
  Mlp mlp({2, 8, 1}, /*seed=*/1);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 32; ++i) {
    xs.push_back({static_cast<double>(i % 4) / 4.0, 0.5});
    ys.push_back(3.0);
  }
  TrainConfig config;
  config.epochs = 600;
  config.learning_rate = 3e-3;
  auto mse = mlp.Train(xs, ys, config);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 0.01);
  EXPECT_NEAR(mlp.Predict({0.25, 0.5}), 3.0, 0.2);
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(5);
  Mlp mlp({3, 16, 1}, /*seed=*/2);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {rng.UniformDouble(), rng.UniformDouble(),
                             rng.UniformDouble()};
    ys.push_back(2.0 * x[0] - 1.0 * x[1] + 0.5 * x[2] + 1.0);
    xs.push_back(std::move(x));
  }
  TrainConfig config;
  config.epochs = 400;
  config.learning_rate = 3e-3;
  auto mse = mlp.Train(xs, ys, config);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 0.01) << "final training MSE";
  EXPECT_NEAR(mlp.Predict({0.5, 0.5, 0.5}), 1.75, 0.25);
}

TEST(MlpTest, LearnsNonlinearXor) {
  // XOR requires the hidden layer; a pure linear model cannot fit it.
  Mlp mlp({2, 16, 8, 1}, /*seed=*/3);
  std::vector<std::vector<double>> xs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> ys = {0, 1, 1, 0};
  // Replicate to form a dataset.
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  for (int rep = 0; rep < 16; ++rep) {
    for (size_t i = 0; i < xs.size(); ++i) {
      train_x.push_back(xs[i]);
      train_y.push_back(ys[i]);
    }
  }
  TrainConfig config;
  config.epochs = 800;
  config.learning_rate = 5e-3;
  auto mse = mlp.Train(train_x, train_y, config);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 0.05);
  EXPECT_GT(mlp.Predict({0, 1}), 0.6);
  EXPECT_LT(mlp.Predict({1, 1}), 0.4);
}

TEST(MlpTest, DeterministicForSeed) {
  Mlp a({4, 8, 1}, 42), b({4, 8, 1}, 42);
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(a.Predict(x), b.Predict(x));
  Mlp c({4, 8, 1}, 43);
  EXPECT_NE(a.Predict(x), c.Predict(x));
}

TEST(MlpTest, TrainValidatesInput) {
  Mlp mlp({2, 4, 1});
  TrainConfig config;
  EXPECT_FALSE(mlp.Train({}, {}, config).ok());
  EXPECT_FALSE(mlp.Train({{1.0, 2.0}}, {1.0, 2.0}, config).ok());
  EXPECT_FALSE(mlp.Train({{1.0, 2.0, 3.0}}, {1.0}, config).ok());
}

TEST(MlpTest, SerializationRoundTrip) {
  Mlp mlp({3, 8, 1}, 7);
  std::vector<std::vector<double>> xs = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  std::vector<double> ys = {1.0, 2.0};
  TrainConfig config;
  config.epochs = 50;
  ASSERT_TRUE(mlp.Train(xs, ys, config).ok());

  std::string blob = mlp.Serialize();
  auto restored = Mlp::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& x : xs) {
    EXPECT_DOUBLE_EQ(restored->Predict(x), mlp.Predict(x));
  }
}

TEST(MlpTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Mlp::Deserialize("not an mlp").ok());
  EXPECT_FALSE(Mlp::Deserialize("mlp v1\n2 3").ok());
  EXPECT_FALSE(Mlp::Deserialize("mlp v1\n2 3 2\n1 2").ok());  // output dim != 1
}

// --------------------------------------------------------------- features

TEST(FeatureEncoderTest, DimensionIsStable) {
  FeatureEncoder encoder(8);
  ViewFeatureInput input;
  input.predicates = {"http://a", "http://b"};
  input.predicate_counts = {10, 20};
  input.predicate_distinct_subjects = {5, 10};
  input.predicate_distinct_objects = {2, 4};
  input.num_group_dims = 2;
  input.total_dims = 4;
  input.agg_kind = 1;
  input.graph_triples = 100;
  input.graph_nodes = 50;
  auto f = encoder.Encode(input);
  EXPECT_EQ(static_cast<int>(f.size()), encoder.dim());
}

TEST(FeatureEncoderTest, ValuesAreBounded) {
  FeatureEncoder encoder;
  ViewFeatureInput input;
  input.predicates = {"http://p1", "http://p2", "http://p3"};
  input.predicate_counts = {1000, 1, 500};
  input.predicate_distinct_subjects = {999, 1, 250};
  input.predicate_distinct_objects = {10, 1, 499};
  input.num_group_dims = 3;
  input.total_dims = 4;
  input.agg_kind = 2;
  input.graph_triples = 2000;
  input.graph_nodes = 900;
  for (double v : encoder.Encode(input)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.5);
  }
}

TEST(FeatureEncoderTest, DistinguishesDimCounts) {
  FeatureEncoder encoder;
  ViewFeatureInput a, b;
  a.predicates = b.predicates = {"http://p"};
  a.predicate_counts = b.predicate_counts = {10};
  a.total_dims = b.total_dims = 4;
  a.graph_triples = b.graph_triples = 100;
  a.num_group_dims = 1;
  b.num_group_dims = 3;
  EXPECT_NE(encoder.Encode(a), encoder.Encode(b));
}

TEST(FeatureEncoderTest, DistinguishesAggKinds) {
  FeatureEncoder encoder;
  ViewFeatureInput a, b;
  a.total_dims = b.total_dims = 2;
  a.agg_kind = 0;
  b.agg_kind = 3;
  EXPECT_NE(encoder.Encode(a), encoder.Encode(b));
}

TEST(FeatureEncoderTest, EmptyInputYieldsZerosExceptAggOneHot) {
  FeatureEncoder encoder;
  ViewFeatureInput input;  // agg_kind defaults to 0 (COUNT): one-hot fires
  auto f = encoder.Encode(input);
  double total = 0.0;
  for (double v : f) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

// ------------------------------------------------------ end-to-end training

TEST(TrainingTest, TrainsOnMeasuredRuntimes) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  testing::MustProfile(&engine);

  core::LearnedTrainingOptions options;
  options.epochs = 150;
  options.repetitions = 1;
  auto mlp = core::TrainLearnedModel(&engine, options);
  ASSERT_TRUE(mlp.ok()) << mlp.status().ToString();
  EXPECT_TRUE(engine.has_learned_model());

  // The engine's store must be back to the base graph after training.
  EXPECT_TRUE(engine.materialized().empty());
  EXPECT_DOUBLE_EQ(engine.StorageAmplification(), 1.0);

  // The learned model is now constructible and produces finite costs.
  auto model = engine.MakeModel(core::CostModelKind::kLearned);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const core::LatticeProfile* profile = engine.profile();
  for (uint32_t mask = 0; mask < 16; ++mask) {
    double cost = (*model)->ViewCost(mask, *profile);
    EXPECT_GE(cost, 0.0);
    EXPECT_TRUE(std::isfinite(cost));
  }
  EXPECT_TRUE(std::isfinite((*model)->BaseCost(*profile)));
}

TEST(TrainingTest, CollectedSamplesCoverLatticePlusBase) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "lubm");
  testing::MustProfile(&engine);

  core::LearnedTrainingOptions options;
  options.repetitions = 1;
  auto samples = core::CollectRuntimeSamples(&engine, options);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  // 16 lattice samples + 2 base samples.
  EXPECT_EQ(samples->size(), 18u);
  size_t base_count = 0;
  for (const auto& sample : *samples) {
    EXPECT_FALSE(sample.features.empty());
    EXPECT_GE(sample.label_log_micros, 0.0);
    if (sample.is_base) ++base_count;
  }
  EXPECT_EQ(base_count, 2u);
}

TEST(TrainingTest, LearnedRequiresTrainingFirst) {
  core::SofosEngine engine;
  testing::SetUpEngine(&engine, "geopop");
  auto model = engine.MakeModel(core::CostModelKind::kLearned);
  EXPECT_FALSE(model.ok());
}

}  // namespace
}  // namespace learned
}  // namespace sofos
