#include "sparql/parser.h"

#include "gtest/gtest.h"
#include "rdf/vocab.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

Query ParseOk(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << "\nquery: " << text;
  return q.ok() ? std::move(q).value() : Query{};
}

Status ParseErr(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_FALSE(q.ok()) << "expected failure for: " << text;
  return q.ok() ? Status::OK() : q.status();
}

TEST(ParserTest, MinimalQuery) {
  Query q = ParseOk("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].alias, "s");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_TRUE(q.where[0].s.is_var());
  EXPECT_FALSE(q.distinct);
  EXPECT_FALSE(q.IsAggregateQuery());
}

TEST(ParserTest, SelectStar) {
  Query q = ParseOk("SELECT * WHERE { ?s ?p ?o . }");
  EXPECT_TRUE(q.select_all);
}

TEST(ParserTest, SelectDistinct) {
  Query q = ParseOk("SELECT DISTINCT ?s WHERE { ?s ?p ?o }");
  EXPECT_TRUE(q.distinct);
}

TEST(ParserTest, WhereKeywordOptional) {
  Query q = ParseOk("SELECT ?s { ?s ?p ?o }");
  EXPECT_EQ(q.where.size(), 1u);
}

TEST(ParserTest, PrefixExpansion) {
  Query q = ParseOk(
      "PREFIX ex: <http://ex/>\n"
      "SELECT ?s WHERE { ?s ex:knows ex:alice }");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].p.term().lexical(), "http://ex/knows");
  EXPECT_EQ(q.where[0].o.term().lexical(), "http://ex/alice");
}

TEST(ParserTest, MultiplePatternsDotSeparated) {
  Query q = ParseOk("SELECT ?a WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }");
  EXPECT_EQ(q.where.size(), 2u);
}

TEST(ParserTest, SemicolonAndCommaLists) {
  Query q = ParseOk(
      "SELECT ?s WHERE { ?s <http://p1> ?a, ?b ; <http://p2> ?c . }");
  ASSERT_EQ(q.where.size(), 3u);
  // All three share the same subject variable.
  EXPECT_EQ(q.where[0].s.var(), "s");
  EXPECT_EQ(q.where[1].s.var(), "s");
  EXPECT_EQ(q.where[2].s.var(), "s");
  EXPECT_EQ(q.where[2].p.term().lexical(), "http://p2");
}

TEST(ParserTest, AKeywordIsRdfType) {
  Query q = ParseOk("SELECT ?s WHERE { ?s a <http://C> }");
  EXPECT_EQ(q.where[0].p.term().lexical(), std::string(vocab::kRdfType));
}

TEST(ParserTest, LiteralObjects) {
  Query q = ParseOk(
      "SELECT ?s WHERE { ?s <http://p> 42 . ?s <http://q> \"x\"@en . "
      "?s <http://r> 3.5 . ?s <http://t> true }");
  ASSERT_EQ(q.where.size(), 4u);
  EXPECT_EQ(q.where[0].o.term().AsInt64().value(), 42);
  EXPECT_EQ(q.where[1].o.term().lang(), "en");
  EXPECT_EQ(q.where[2].o.term().datatype(), Term::Datatype::kDouble);
  EXPECT_EQ(q.where[3].o.term().datatype(), Term::Datatype::kBoolean);
}

TEST(ParserTest, NegativeNumericLiteral) {
  Query q = ParseOk("SELECT ?s WHERE { ?s <http://p> -5 }");
  EXPECT_EQ(q.where[0].o.term().AsInt64().value(), -5);
}

TEST(ParserTest, TypedLiteralInPattern) {
  Query q = ParseOk(
      "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"
      "SELECT ?s WHERE { ?s <http://p> \"7\"^^xsd:integer }");
  EXPECT_EQ(q.where[0].o.term().datatype(), Term::Datatype::kInteger);
}

TEST(ParserTest, FilterComparison) {
  Query q = ParseOk("SELECT ?s WHERE { ?s <http://p> ?v . FILTER(?v > 10) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0]->kind, Expr::Kind::kBinary);
  EXPECT_EQ(q.filters[0]->bop, BinaryOp::kGt);
}

TEST(ParserTest, FilterLogicalPrecedence) {
  Query q = ParseOk(
      "SELECT ?s WHERE { ?s <http://p> ?v . FILTER(?v > 1 && ?v < 5 || ?v = 9) }");
  // || binds loosest: (a && b) || c
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0]->bop, BinaryOp::kOr);
  EXPECT_EQ(q.filters[0]->lhs->bop, BinaryOp::kAnd);
}

TEST(ParserTest, FilterArithmeticPrecedence) {
  auto expr = Parser::ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->bop, BinaryOp::kAdd);
  EXPECT_EQ((*expr)->rhs->bop, BinaryOp::kMul);
}

TEST(ParserTest, FilterUnaryOperators) {
  auto expr = Parser::ParseExpression("!(?x = 1)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, Expr::Kind::kUnary);
  EXPECT_EQ((*expr)->uop, UnaryOp::kNot);

  auto neg = Parser::ParseExpression("-?x");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ((*neg)->uop, UnaryOp::kNeg);
}

TEST(ParserTest, FilterIriEquality) {
  Query q = ParseOk(
      "SELECT ?s WHERE { ?s <http://p> ?c . FILTER(?c = <http://France>) }");
  EXPECT_EQ(q.filters[0]->rhs->literal.lexical(), "http://France");
}

TEST(ParserTest, FilterFunctions) {
  Query q = ParseOk(
      "SELECT ?s WHERE { ?s <http://p> ?v . "
      "FILTER(REGEX(STR(?v), \"abc\", \"i\") && BOUND(?s)) }");
  ASSERT_EQ(q.filters.size(), 1u);
}

TEST(ParserTest, GroupByWithAggregates) {
  Query q = ParseOk(
      "SELECT ?c (SUM(?pop) AS ?total) WHERE { ?c <http://pop> ?pop } GROUP BY ?c");
  EXPECT_TRUE(q.IsAggregateQuery());
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0], "c");
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[1].alias, "total");
  EXPECT_EQ(q.select[1].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(q.select[1].expr->agg, AggKind::kSum);
}

TEST(ParserTest, AllAggregateKinds) {
  Query q = ParseOk(
      "SELECT (COUNT(?x) AS ?c) (SUM(?x) AS ?s) (AVG(?x) AS ?a) "
      "(MIN(?x) AS ?mn) (MAX(?x) AS ?mx) WHERE { ?e <http://v> ?x }");
  ASSERT_EQ(q.select.size(), 5u);
  EXPECT_EQ(q.select[0].expr->agg, AggKind::kCount);
  EXPECT_EQ(q.select[1].expr->agg, AggKind::kSum);
  EXPECT_EQ(q.select[2].expr->agg, AggKind::kAvg);
  EXPECT_EQ(q.select[3].expr->agg, AggKind::kMin);
  EXPECT_EQ(q.select[4].expr->agg, AggKind::kMax);
}

TEST(ParserTest, CountStar) {
  Query q = ParseOk("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }");
  EXPECT_TRUE(q.select[0].expr->count_star);
}

TEST(ParserTest, CountDistinct) {
  Query q = ParseOk("SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?s ?p ?x }");
  EXPECT_TRUE(q.select[0].expr->agg_distinct);
  EXPECT_FALSE(q.select[0].expr->count_star);
}

TEST(ParserTest, AggregateExpressionArithmetic) {
  // Needed by the AVG roll-up rewrite: SUM(a)/SUM(b).
  Query q = ParseOk(
      "SELECT ?g ((SUM(?a) / SUM(?b)) AS ?avg) WHERE { ?x <http://a> ?a ; "
      "<http://b> ?b ; <http://g> ?g } GROUP BY ?g");
  ASSERT_EQ(q.select.size(), 2u);
  const Expr& e = *q.select[1].expr;
  EXPECT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bop, BinaryOp::kDiv);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(e.rhs->kind, Expr::Kind::kAggregate);
}

TEST(ParserTest, HavingClause) {
  Query q = ParseOk(
      "SELECT ?c (COUNT(*) AS ?n) WHERE { ?c <http://p> ?o } GROUP BY ?c "
      "HAVING (COUNT(*) > 2)");
  ASSERT_EQ(q.having.size(), 1u);
  EXPECT_TRUE(q.having[0]->ContainsAggregate());
}

TEST(ParserTest, OrderByVariants) {
  Query q = ParseOk(
      "SELECT ?s ?v WHERE { ?s <http://p> ?v } ORDER BY DESC(?v) ?s");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_FALSE(q.order_by[0].ascending);
  EXPECT_TRUE(q.order_by[1].ascending);
}

TEST(ParserTest, LimitOffset) {
  Query q = ParseOk("SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5");
  EXPECT_EQ(q.limit, 10);
  EXPECT_EQ(q.offset, 5);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  Query q = ParseOk(
      "select ?c (sum(?v) as ?t) where { ?c <http://p> ?v } group by ?c "
      "having (sum(?v) > 0) order by desc(?t) limit 3");
  EXPECT_EQ(q.limit, 3);
  EXPECT_EQ(q.group_by.size(), 1u);
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* text =
      "SELECT ?c (SUM(?pop) AS ?total) WHERE { ?c <http://pop> ?pop . "
      "FILTER((?pop > 1000)) } GROUP BY ?c ORDER BY DESC(?total) LIMIT 5";
  Query q1 = ParseOk(text);
  std::string canonical = q1.ToString();
  Query q2 = ParseOk(canonical);
  EXPECT_EQ(q2.ToString(), canonical);
  EXPECT_EQ(q2.where.size(), q1.where.size());
  EXPECT_EQ(q2.limit, q1.limit);
}

// --------------------------------------------------------------- errors

TEST(ParserTest, ErrorMissingSelect) {
  ParseErr("WHERE { ?s ?p ?o }");
}

TEST(ParserTest, ErrorEmptySelect) {
  ParseErr("SELECT WHERE { ?s ?p ?o }");
}

TEST(ParserTest, ErrorUnterminatedWhere) {
  ParseErr("SELECT ?s WHERE { ?s ?p ?o");
}

TEST(ParserTest, ErrorMissingAs) {
  ParseErr("SELECT (SUM(?x) ?t) WHERE { ?s ?p ?x }");
}

TEST(ParserTest, ErrorUndefinedPrefix) {
  Status st = ParseErr("SELECT ?s WHERE { ?s nope:p ?o }");
  EXPECT_NE(st.message().find("undefined prefix"), std::string::npos);
}

TEST(ParserTest, ErrorUnsupportedConstructsNamed) {
  Status st = ParseErr("SELECT ?s WHERE { { ?s ?p ?o } UNION { ?s ?q ?o } }");
  // The parser reports the construct by name somewhere in the chain.
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  Status opt = ParseErr("SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r } }");
  EXPECT_NE(opt.message().find("OPTIONAL"), std::string::npos);
}

TEST(ParserTest, ErrorNestedAggregates) {
  Status st = ParseErr("SELECT (SUM(COUNT(?x)) AS ?y) WHERE { ?s ?p ?x }");
  EXPECT_NE(st.message().find("nested"), std::string::npos);
}

TEST(ParserTest, ErrorGroupByWithoutVariable) {
  ParseErr("SELECT ?s WHERE { ?s ?p ?o } GROUP BY");
}

TEST(ParserTest, ErrorLimitWithoutNumber) {
  ParseErr("SELECT ?s WHERE { ?s ?p ?o } LIMIT ?x");
}

TEST(ParserTest, ErrorTrailingGarbage) {
  ParseErr("SELECT ?s WHERE { ?s ?p ?o } garbage");
}

TEST(ParserTest, ErrorLiteralPredicate) {
  ParseErr("SELECT ?s WHERE { ?s 42 ?o }");
}

TEST(ParserTest, ErrorPositionReported) {
  Status st = ParseErr("SELECT ?s\nWHERE { ?s 42 ?o }");
  EXPECT_NE(st.message().find("sparql:2:"), std::string::npos) << st.ToString();
}

}  // namespace
}  // namespace sparql
}  // namespace sofos
