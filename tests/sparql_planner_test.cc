#include "sparql/planner.h"

#include "gtest/gtest.h"
#include "sparql/parser.h"
#include "tests/test_util.h"

namespace sofos {
namespace sparql {
namespace {

Term Ex(const std::string& s) { return Term::Iri("http://ex/" + s); }

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A graph with skewed predicate cardinalities: p_common has 100
    // triples, p_rare has 2.
    for (int i = 0; i < 100; ++i) {
      store_.Add(Ex("s" + std::to_string(i)), Ex("p_common"), Ex("o"));
    }
    store_.Add(Ex("s1"), Ex("p_rare"), Ex("x"));
    store_.Add(Ex("s2"), Ex("p_rare"), Ex("y"));
    store_.Finalize();
  }

  Plan MustPlan(const std::string& text) {
    auto query = Parser::Parse(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    query_ = std::move(query).value();
    auto plan = Planner::Build(&query_, store_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  TripleStore store_;
  Query query_;  // must outlive the plan
};

TEST_F(PlannerTest, StartsWithSmallestPattern) {
  Plan plan = MustPlan(
      "SELECT ?s WHERE { ?s <http://ex/p_common> ?a . ?s <http://ex/p_rare> ?b }");
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].pattern.p.term().lexical(), "http://ex/p_rare");
  EXPECT_EQ(plan.steps[0].est_cardinality, 2u);
  EXPECT_EQ(plan.steps[1].est_cardinality, 100u);
}

TEST_F(PlannerTest, PrefersConnectedPatterns) {
  // Even though the second p_rare pattern is small, the planner must join
  // connected patterns before jumping to a disconnected one.
  Plan plan = MustPlan(
      "SELECT ?s WHERE { ?s <http://ex/p_rare> ?a . "
      "?s <http://ex/p_common> ?b . ?z <http://ex/p_rare> ?w }");
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_TRUE(plan.steps[1].connected);
  EXPECT_EQ(plan.steps[1].pattern.p.term().lexical(), "http://ex/p_common");
  EXPECT_FALSE(plan.steps[2].connected) << "cross product must be flagged";
}

TEST_F(PlannerTest, EmptyGuaranteedWhenConstantMissing) {
  Plan plan = MustPlan("SELECT ?s WHERE { ?s <http://ex/never_seen> ?o }");
  EXPECT_TRUE(plan.empty_guaranteed);
}

TEST_F(PlannerTest, FiltersPushedToEarliestStep) {
  Plan plan = MustPlan(
      "SELECT ?s WHERE { ?s <http://ex/p_rare> ?a . ?s <http://ex/p_common> ?b . "
      "FILTER(?a = <http://ex/x>) FILTER(?b = <http://ex/o>) }");
  ASSERT_EQ(plan.steps.size(), 2u);
  // ?a is bound after step 0 (the p_rare scan), ?b only after step 1.
  ASSERT_EQ(plan.steps[0].filters.size(), 1u);
  ASSERT_EQ(plan.steps[1].filters.size(), 1u);
}

TEST_F(PlannerTest, ExplainMentionsEveryStage) {
  Plan plan = MustPlan(
      "SELECT DISTINCT ?s (COUNT(?b) AS ?n) WHERE { ?s <http://ex/p_common> ?b . "
      "FILTER(?s != <http://ex/s1>) } GROUP BY ?s "
      "HAVING (COUNT(?b) > 0) ORDER BY DESC(?n) LIMIT 3 OFFSET 1");
  std::string text = plan.ToString();
  EXPECT_NE(text.find("SCAN"), std::string::npos);
  EXPECT_NE(text.find("FILTER"), std::string::npos);
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos);
  EXPECT_NE(text.find("HAVING"), std::string::npos);
  EXPECT_NE(text.find("PROJECT"), std::string::npos);
  EXPECT_NE(text.find("DISTINCT"), std::string::npos);
  EXPECT_NE(text.find("ORDER BY"), std::string::npos);
  EXPECT_NE(text.find("SLICE"), std::string::npos);
}

TEST_F(PlannerTest, EstimatesAreExactForBoundPatterns) {
  Plan plan = MustPlan(
      "SELECT ?o WHERE { <http://ex/s1> <http://ex/p_rare> ?o }");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].est_cardinality, 1u);
}

TEST_F(PlannerTest, AggSlotsAssignedInDiscoveryOrder) {
  Plan plan = MustPlan(
      "SELECT ?s (SUM(?b) AS ?x) (COUNT(?b) AS ?y) WHERE { "
      "?s <http://ex/p_common> ?b } GROUP BY ?s");
  ASSERT_EQ(plan.agg_specs.size(), 2u);
  EXPECT_EQ(plan.agg_specs[0]->agg, AggKind::kSum);
  EXPECT_EQ(plan.agg_specs[0]->agg_slot, 0);
  EXPECT_EQ(plan.agg_specs[1]->agg, AggKind::kCount);
  EXPECT_EQ(plan.agg_specs[1]->agg_slot, 1);
}

TEST_F(PlannerTest, RequiresFinalizedStore) {
  TripleStore fresh;
  fresh.Add(Ex("a"), Ex("b"), Ex("c"));
  auto query = Parser::Parse("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(query.ok());
  Query q = std::move(query).value();
  EXPECT_FALSE(Planner::Build(&q, fresh).ok());
}

TEST_F(PlannerTest, RejectsEmptyWhere) {
  // The parser cannot produce an empty WHERE, but the planner guards anyway.
  Query q;
  q.select_all = true;
  EXPECT_FALSE(Planner::Build(&q, store_).ok());
}

TEST_F(PlannerTest, SelectStarCannotCombineWithGroupBy) {
  auto query = Parser::Parse(
      "SELECT * WHERE { ?s ?p ?o } GROUP BY ?s");
  ASSERT_TRUE(query.ok());
  Query q = std::move(query).value();
  EXPECT_FALSE(Planner::Build(&q, store_).ok());
}

}  // namespace
}  // namespace sparql
}  // namespace sofos
