/// Bibliographic analytics on the SWDF-style dataset, exercising the
/// workload-aware selection path: the query distribution is skewed toward
/// per-conference-per-year reporting, and selection under workload weights
/// is compared against uniform HRU weights.
///
///   ./swdf_reporting

#include <cstdio>

#include "common/table_printer.h"
#include "core/engine.h"
#include "datagen/swdf.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

int Run() {
  TripleStore store;
  datagen::SwdfConfig config;
  datagen::DatasetSpec spec = datagen::GenerateSwdf(config, &store);
  std::printf("SWDF graph: %zu triples\n\n", store.NumTriples());

  auto facet = core::Facet::FromSparql(spec.facet_sparql, spec.name,
                                       spec.dim_labels);
  if (!facet.ok()) return 1;
  core::SofosEngine engine;
  (void)engine.LoadStore(std::move(store));
  (void)engine.SetFacet(std::move(facet).value());
  auto profile = engine.Profile();
  if (!profile.ok()) return 1;

  // A skewed workload: 70% of queries group by (conference, year), the
  // rest spread across the lattice.
  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 40;
  options.seed = 99;
  auto queries = generator.Generate(options);
  if (!queries.ok()) return 1;
  // Overwrite 70% of signatures/SPARQL with the hot shape.
  for (size_t i = 0; i < queries->size(); ++i) {
    if (i % 10 < 7) {
      core::WorkloadQuery& query = (*queries)[i];
      query.signature = core::QuerySignature{};
      query.signature.group_mask = 0b0011;  // conference + year
      query.sparql =
          "PREFIX swdf: <http://sofos.example.org/swdf#>\n"
          "SELECT ?conference ?year (COUNT(?paper) AS ?agg) WHERE {\n"
          "  ?paper swdf:atEdition ?edition .\n"
          "  ?edition swdf:ofConference ?conference .\n"
          "  ?edition swdf:year ?year .\n"
          "  ?paper swdf:inTrack ?track .\n"
          "  ?paper swdf:creator ?author .\n"
          "  ?author swdf:basedNear ?country .\n"
          "} GROUP BY ?conference ?year";
    }
  }

  // Empirical query-shape weights from the workload.
  core::QueryWeights weights(16, 0.0);
  for (const auto& query : *queries) {
    weights[query.signature.NeededMask()] += 1.0 / queries->size();
  }

  core::TripleCountCostModel model;
  const size_t k = 3;

  TablePrinter table(
      {"selection", "views", "ampl", "mean us", "median us", "hit rate"});
  for (bool workload_aware : {false, true}) {
    auto selection =
        engine.SelectViews(model, k, workload_aware ? &weights : nullptr);
    if (!selection.ok()) return 1;
    if (!engine.MaterializeSelection(*selection).ok()) return 1;
    auto report = engine.RunWorkload(*queries, true);
    if (!report.ok()) return 1;

    std::string views;
    for (uint32_t mask : selection->views) {
      views += engine.facet().MaskLabel(mask);
    }
    table.AddRow(
        {workload_aware ? "workload-aware" : "uniform (HRU)", views,
         TablePrinter::Cell(engine.StorageAmplification(), 2),
         TablePrinter::Cell(report->mean_micros, 1),
         TablePrinter::Cell(report->median_micros, 1),
         TablePrinter::Cell(
             static_cast<double>(report->view_hits) / report->outcomes.size(),
             2)});
    (void)engine.DropMaterializedViews();
  }
  std::printf("uniform vs workload-aware greedy selection (k = %zu):\n\n", k);
  table.Print();
  std::printf(
      "\nWith 70%% of queries on {conference,year}, workload-aware weights\n"
      "pull the selection toward that view and its roll-up ancestors.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
