/// The paper's running example (Example 1.1 / Figure 1), end to end:
///
///   "In how many countries is French an official language?"
///   "What is the total amount of French-speaking population?"
///
/// Demonstrates cost-model comparison on the geography facet: every cost
/// model selects k views, and the same two queries are timed under each
/// selection — the textual version of the demo's cost-model walkthrough.
///
///   ./geo_languages [k]

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "core/engine.h"
#include "core/training.h"
#include "datagen/geo.h"

namespace {

using namespace sofos;

Result<core::WorkloadQuery> FrenchPopulationQuery() {
  core::WorkloadQuery query;
  query.id = "french-population";
  // Grouping by language (dim 2) with an equality filter on it.
  query.signature.group_mask = 0b0100;
  query.signature.filter_mask = 0b0100;
  core::DimConstraint constraint;
  constraint.dim = 2;
  constraint.usage = core::DimUsage::kFilteredEq;
  constraint.filter_sparql = "?language = <http://sofos.example.org/geo#lang/L0>";
  query.signature.constraints.push_back(constraint);
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?language (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "  FILTER(?language = <http://sofos.example.org/geo#lang/L0>)\n"
      "} GROUP BY ?language";
  return query;
}

core::WorkloadQuery CountriesPerLanguageQuery() {
  core::WorkloadQuery query;
  query.id = "countries-per-language";
  query.signature.group_mask = 0b0110;  // country + language
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country ?language (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "} GROUP BY ?country ?language";
  return query;
}

int Run(size_t k) {
  TripleStore store;
  datagen::GeoPopConfig config;
  datagen::DatasetSpec spec = datagen::GenerateGeoPop(config, &store);
  auto facet = core::Facet::FromSparql(spec.facet_sparql, spec.name,
                                       spec.dim_labels);
  if (!facet.ok()) return 1;

  core::SofosEngine engine;
  (void)engine.LoadStore(std::move(store));
  (void)engine.SetFacet(std::move(facet).value());
  if (!engine.Profile().ok()) return 1;

  // Train the learned model once (materializes the full lattice, measures,
  // rolls back).
  core::LearnedTrainingOptions train_options;
  train_options.repetitions = 1;
  train_options.epochs = 200;
  if (!core::TrainLearnedModel(&engine, train_options).ok()) return 1;

  auto q1 = FrenchPopulationQuery();
  core::WorkloadQuery q2 = CountriesPerLanguageQuery();

  TablePrinter table({"model", "selected views", "ampl", "q1 (us)", "q2 (us)",
                      "q1 via", "q2 via"});
  for (core::CostModelKind kind :
       {core::CostModelKind::kRandom, core::CostModelKind::kTripleCount,
        core::CostModelKind::kAggValueCount, core::CostModelKind::kNodeCount,
        core::CostModelKind::kLearned}) {
    auto model = engine.MakeModel(kind);
    if (!model.ok()) return 1;
    auto selection = engine.SelectViews(**model, k);
    if (!selection.ok()) return 1;
    if (!engine.MaterializeSelection(*selection).ok()) return 1;

    auto o1 = engine.Answer(*q1, true);
    auto o2 = engine.Answer(q2, true);
    if (!o1.ok() || !o2.ok()) return 1;

    std::string views;
    for (uint32_t mask : selection->views) {
      views += engine.facet().MaskLabel(mask);
    }
    table.AddRow({(*model)->name(), views,
                  TablePrinter::Cell(engine.StorageAmplification(), 2),
                  TablePrinter::Cell(o1->micros, 1),
                  TablePrinter::Cell(o2->micros, 1),
                  o1->used_view ? engine.facet().MaskLabel(o1->view_mask) : "base",
                  o2->used_view ? engine.facet().MaskLabel(o2->view_mask) : "base"});
    (void)engine.DropMaterializedViews();
  }

  // Baseline row: no views at all.
  auto b1 = engine.Answer(*q1, false);
  auto b2 = engine.Answer(q2, false);
  if (!b1.ok() || !b2.ok()) return 1;
  table.AddRow({"(none)", "-", "1.00", TablePrinter::Cell(b1->micros, 1),
                TablePrinter::Cell(b2->micros, 1), "base", "base"});

  std::printf("Example 1.1 queries under each cost model (k = %zu views)\n\n",
              k);
  table.Print();
  std::printf(
      "\nq1 = total population speaking language L0 (the 'French' query)\n"
      "q2 = population per (country, language)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t k = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 4;
  return Run(k == 0 ? 4 : k);
}
