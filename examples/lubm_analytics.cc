/// University analytics on the LUBM-style dataset: enrollment reporting by
/// university / department / course level / student type, under a byte
/// budget instead of a view-count budget (the §3 space-budget variant).
///
///   ./lubm_analytics [budget_kib]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "datagen/lubm.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

int Run(uint64_t budget_bytes) {
  TripleStore store;
  datagen::LubmConfig config;
  datagen::DatasetSpec spec = datagen::GenerateLubm(config, &store);
  std::printf("LUBM graph: %zu triples\n", store.NumTriples());

  auto facet = core::Facet::FromSparql(spec.facet_sparql, spec.name,
                                       spec.dim_labels);
  if (!facet.ok()) {
    std::fprintf(stderr, "%s\n", facet.status().ToString().c_str());
    return 1;
  }
  core::SofosEngine engine;
  (void)engine.LoadStore(std::move(store));
  (void)engine.SetFacet(std::move(facet).value());
  auto profile = engine.Profile();
  if (!profile.ok()) return 1;

  // Select under a byte budget with the aggregated-values model.
  core::AggValueCountCostModel model;
  core::Lattice lattice(&engine.facet());
  core::GreedySelector selector(&lattice, *profile, &model);
  core::SelectionResult selection = selector.SelectWithinBytes(budget_bytes);
  std::printf("byte budget %s -> %zu views: %s\n",
              FormatBytes(budget_bytes).c_str(), selection.views.size(),
              selection.ToString(engine.facet()).c_str());
  if (!engine.MaterializeSelection(selection).ok()) return 1;
  std::printf("storage amplification: %.2fx\n\n", engine.StorageAmplification());

  // A realistic reporting workload.
  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 12;
  options.seed = 2021;
  auto queries = generator.Generate(options);
  if (!queries.ok()) return 1;

  TablePrinter table({"query", "grouped dims", "answered via", "us (views)",
                      "us (base)", "speedup"});
  for (const auto& query : *queries) {
    auto with = engine.Answer(query, true);
    auto base = engine.Answer(query, false);
    if (!with.ok() || !base.ok()) return 1;
    table.AddRow({query.id, engine.facet().MaskLabel(query.signature.group_mask),
                  with->used_view
                      ? engine.facet().MaskLabel(with->view_mask)
                      : "base graph",
                  TablePrinter::Cell(with->micros, 1),
                  TablePrinter::Cell(base->micros, 1),
                  TablePrinter::Cell(base->micros / with->micros, 2)});
  }
  table.Print();

  // Show one concrete report the dean might read.
  core::WorkloadQuery report;
  report.id = "per-university-level";
  report.signature.group_mask = 0b0101;  // university + level
  report.sparql =
      "PREFIX lubm: <http://sofos.example.org/lubm#>\n"
      "SELECT ?university ?level (COUNT(?student) AS ?agg) WHERE {\n"
      "  ?student lubm:takesCourse ?course .\n"
      "  ?student lubm:studentType ?stype .\n"
      "  ?course lubm:courseLevel ?level .\n"
      "  ?course lubm:offeredBy ?department .\n"
      "  ?department lubm:subOrganizationOf ?university .\n"
      "} GROUP BY ?university ?level";
  auto outcome = engine.Answer(report, true);
  if (!outcome.ok()) return 1;
  std::printf("\nregistrations per university and course level (via %s):\n%s\n",
              outcome->used_view
                  ? engine.facet().MaskLabel(outcome->view_mask).c_str()
                  : "base graph",
              outcome->result.ToTable(12).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t budget_kib = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 256;
  return Run(budget_kib * 1024);
}
