/// Interactive terminal twin of the SOFOS demo GUI (paper Figure 3):
///
///   ① full lattice view      → `lattice`, `inspect <mask>`
///   ② cost function selector → `select <model> <k>`, `user <mask>...`
///   ③ materialized lattice   → `materialize`, `drop`, `status`
///   ④ performance analyzer   → `workload <n>`, `run`, `challenge <k>`
///
/// Reads commands from stdin (scriptable: `echo "..." | sofos_cli`).
///
///   ./sofos_cli [dataset] [scale] [num_threads]
///
/// `scale` is a named tier (tiny|demo|full) or an explicit triple target
/// ("100k", "1m", up to 200m); see also the `load`, `gen` and `layout`
/// commands for re-loading at a different scale or switching the store to
/// the compact (CSR + front-coded dictionary) layout at runtime.
///
/// `num_threads` sizes the engine's pool for profiling, selection and the
/// batched workload runner (0 = hardware_concurrency, 1 = serial legacy
/// behavior); it can also be changed at runtime with `threads <n>`.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/metrics_registry.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/table_printer.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/training.h"
#include "datagen/registry.h"
#include "server/client.h"
#include "server/server.h"
#include "sparql/query_engine.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

class Cli {
 public:
  void SetNumThreads(unsigned num_threads) {
    engine_.SetNumThreads(num_threads);
    std::printf("using %u thread%s\n", engine_.num_threads(),
                engine_.num_threads() == 1 ? "" : "s");
  }

  Status LoadDataset(const std::string& name,
                     const datagen::ScaleSpec& scale) {
    TripleStore store;
    // Partition before generation finalizes, so LoadStore's repartition
    // no-ops instead of rebuilding every index a second time.
    store.SetShardCount(engine_.ResolvedShardCount());
    WallTimer gen_timer;
    SOFOS_ASSIGN_OR_RETURN(datagen::DatasetSpec spec,
                           datagen::GenerateByName(name, scale, 42, &store));
    const double gen_seconds = gen_timer.ElapsedSeconds();
    SOFOS_ASSIGN_OR_RETURN(
        core::Facet facet,
        core::Facet::FromSparql(spec.facet_sparql, spec.name, spec.dim_labels));
    SOFOS_RETURN_IF_ERROR(engine_.LoadStore(std::move(store)));
    SOFOS_RETURN_IF_ERROR(engine_.SetFacet(std::move(facet)));
    SOFOS_RETURN_IF_ERROR(engine_.Profile().status());
    spec_ = spec;
    std::printf(
        "loaded %s (%s): %llu triples in %.2fs (%.1f bytes/triple, "
        "%s layout), facet %s with %zu dims\n",
        spec.name.c_str(), spec.description.c_str(),
        static_cast<unsigned long long>(engine_.CurrentTriples()), gen_seconds,
        BytesPerTriple(), engine_.store()->compact_layout() ? "compact"
                                                            : "sorted",
        engine_.facet().name().c_str(), engine_.facet().num_dims());
    return Status::OK();
  }

  void Repl() {
    std::string line;
    std::printf("sofos> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
      std::printf("sofos> ");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  /// True when any dispatched command failed — the process exit code, so
  /// `serve` scripting and CI smoke tests can detect errors (historically
  /// failures printed and exited 0).
  bool had_error() const { return had_error_; }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    Status status = Status::OK();
    if (cmd == "quit" || cmd == "exit") return false;
    // While serving, the server owns the engine (single-driver contract):
    // only server management, client requests, help, and the thread-safe
    // observability reads (registry snapshot / Prometheus dump) stay
    // available.
    if (server_ != nullptr && cmd != "serve" && cmd != "client" &&
        cmd != "help" && cmd != "stats" && cmd != "metrics" &&
        cmd != "history" && cmd != "slow" && cmd != "record") {
      std::printf(
          "engine is busy serving on port %u: use `client %u <request>`, or "
          "`serve stop` first\n",
          server_->port(), server_->port());
      had_error_ = true;
      return true;
    }
    if (cmd == "help") {
      Help();
    } else if (cmd == "lattice") {
      std::printf("%s", engine_.lattice().Render(engine_.MaterializedMasks()).c_str());
    } else if (cmd == "inspect") {
      uint32_t mask = 0;
      in >> mask;
      status = Inspect(mask);
    } else if (cmd == "models") {
      std::printf("random triples aggvalues nodes learned user\n");
    } else if (cmd == "select") {
      std::string model;
      size_t k = 3;
      in >> model >> k;
      status = Select(model, k);
    } else if (cmd == "user") {
      std::vector<uint32_t> masks;
      uint32_t mask;
      while (in >> mask) masks.push_back(mask);
      status = MaterializeUser(masks);
    } else if (cmd == "materialize") {
      status = Materialize();
    } else if (cmd == "drop") {
      status = engine_.DropMaterializedViews();
    } else if (cmd == "status") {
      PrintStatus();
    } else if (cmd == "workload") {
      int n = 20;
      in >> n;
      status = MakeWorkload(n);
    } else if (cmd == "run") {
      status = RunWorkload();
    } else if (cmd == "train") {
      status = Train();
    } else if (cmd == "challenge") {
      size_t k = 2;
      in >> k;
      status = Challenge(k);
    } else if (cmd == "update") {
      // Both arguments are optional; a failed extraction must keep the
      // default rather than zeroing the target.
      int batches = 1;
      double fraction = 0.01;
      int n;
      double f;
      if (in >> n) batches = n;
      if (in >> f) fraction = f;
      status = Update(batches, fraction);
    } else if (cmd == "staleness") {
      std::printf("%s\n", engine_.staleness_monitor().Summary().c_str());
    } else if (cmd == "sparql") {
      std::string query;
      std::getline(in, query);
      status = RunSparql(query);
    } else if (cmd == "explain") {
      std::string query;
      std::getline(in, query);
      status = Explain(query);
    } else if (cmd == "analyze") {
      std::string query;
      std::getline(in, query);
      status = Analyze(query);
    } else if (cmd == "trace") {
      std::string query;
      std::getline(in, query);
      status = Trace(query);
    } else if (cmd == "stats") {
      std::string mode;
      in >> mode;
      if (mode.empty()) {
        std::printf("%s\n", engine_.metrics()->ToJson().c_str());
      } else if (mode == "pretty") {
        PrintStatsPretty();
      } else {
        std::printf("usage: stats [pretty]\n");
        had_error_ = true;
      }
    } else if (cmd == "metrics") {
      std::printf("%s", engine_.metrics()->PrometheusText().c_str());
    } else if (cmd == "history") {
      double window = 60.0;
      double w;
      if (in >> w) window = w;
      status = History(window);
    } else if (cmd == "slow") {
      status = Slow();
    } else if (cmd == "record") {
      std::string sub;
      in >> sub;
      status = Record(sub);
    } else if (cmd == "serve") {
      std::string arg;
      in >> arg;
      status = Serve(arg);
    } else if (cmd == "client") {
      long port = 0;
      std::string request;
      if (!(in >> port) || port <= 0 || port > 65535) {
        status = Status::InvalidArgument("usage: client <port> <request line>");
      } else {
        std::getline(in, request);
        status = Client(static_cast<uint16_t>(port),
                        std::string(StrTrim(request)));
      }
    } else if (cmd == "exec-threads") {
      long n = -1;
      if (!(in >> n) || n < 0 ||
          n > static_cast<long>(ThreadPool::kMaxThreads)) {
        std::printf(
            "usage: exec-threads <n> with 0 <= n <= %zu (0=auto budget)\n",
            ThreadPool::kMaxThreads);
      } else {
        engine_.SetExecThreads(static_cast<unsigned>(n));
        std::printf("intra-query dop: %s\n",
                    n == 0 ? "auto (pool / in-flight queries)"
                           : std::to_string(n).c_str());
      }
    } else if (cmd == "threads") {
      long n = -1;
      if (!(in >> n) || n < 0 ||
          n > static_cast<long>(ThreadPool::kMaxThreads)) {
        std::printf("usage: threads <n> with 0 <= n <= %zu (0=auto, 1=serial)\n",
                    ThreadPool::kMaxThreads);
      } else {
        SetNumThreads(static_cast<unsigned>(n));
      }
    } else if (cmd == "load") {
      std::string name, scale_text;
      in >> name >> scale_text;
      if (name.empty()) {
        std::printf("usage: load <dataset> [tiny|demo|full|<N>[k|m]]\n");
      } else {
        datagen::ScaleSpec scale;
        auto parsed = datagen::ParseScaleSpec(
            scale_text.empty() ? "demo" : scale_text);
        if (parsed.ok()) {
          scale = parsed.value();
          status = LoadDataset(name, scale);
        } else {
          status = parsed.status();
        }
      }
    } else if (cmd == "gen") {
      std::string name, scale_text;
      in >> name >> scale_text;
      if (name.empty()) {
        std::printf("usage: gen <dataset> [tiny|demo|full|<N>[k|m]]\n");
      } else {
        status = Generate(name, scale_text.empty() ? "demo" : scale_text);
      }
    } else if (cmd == "layout") {
      std::string name;
      if (!(in >> name)) {
        std::printf("store layout: %s (knob %s; auto switches to compact "
                    "at %llu triples)\n",
                    engine_.store()->compact_layout() ? "compact" : "sorted",
                    core::StoreLayoutName(engine_.store_layout()).c_str(),
                    static_cast<unsigned long long>(
                        core::SofosEngine::kCompactAutoTriples));
      } else {
        auto parsed = core::ParseStoreLayout(name);
        if (parsed.ok()) {
          engine_.SetStoreLayout(parsed.value());
          std::printf("store layout: %s (%.1f bytes/triple)\n",
                      engine_.store()->compact_layout() ? "compact"
                                                        : "sorted",
                      BytesPerTriple());
        } else {
          status = parsed.status();
        }
      }
    } else if (cmd == "shards") {
      long n = -1;
      if (!(in >> n)) {
        std::printf("store shards: %zu (knob %u, 0=auto)\n",
                    engine_.store()->shard_count(), engine_.shard_count());
      } else if (n < 0 || n > 256) {
        std::printf("usage: shards [n] with 0 <= n <= 256 (0=auto from pool)\n");
      } else {
        engine_.SetShardCount(static_cast<unsigned>(n));
        std::printf("store shards: %zu per index family (COW snapshots "
                    "publish O(changed shards))\n",
                    engine_.store()->shard_count());
      }
    } else {
      std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      had_error_ = true;
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      had_error_ = true;
    }
    return true;
  }

  void Help() {
    std::printf(
        "  lattice              render the view lattice (* = materialized)\n"
        "  inspect <mask>       show a view's stats and stored rows\n"
        "  models               list cost models\n"
        "  select <model> <k>   greedy-select k views under a cost model\n"
        "  user <mask>...       pick views by hand (user-defined model)\n"
        "  materialize          materialize the pending selection\n"
        "  drop                 roll back to the base graph\n"
        "  status               storage figures and materialized views\n"
        "  workload <n>         generate n random analytical queries\n"
        "  run                  run the workload with and without views\n"
        "  update [n] [frac]    apply n random update batches (frac of |G|\n"
        "                       each) with incremental view maintenance\n"
        "  staleness            drift of the current selection vs baseline\n"
        "  train                train the learned cost model\n"
        "  challenge <k>        oracle best-k vs every cost model\n"
        "  sparql <query>       run a raw SPARQL query\n"
        "  explain <query>      show the batch plan (join algos, morsels, dop)\n"
        "  analyze [query]      EXPLAIN ANALYZE: run and annotate the plan\n"
        "                       with per-operator actuals (default: root view)\n"
        "  trace [query]        run with span tracing on; prints the span\n"
        "                       tree as JSON (default: root view)\n"
        "  stats [pretty]       engine metrics registry: one JSON line, or\n"
        "                       aligned counter/gauge/latency tables\n"
        "  metrics              Prometheus text exposition of the registry\n"
        "  history [sec]        sliding-window rates and interval\n"
        "                       percentiles from the serving telemetry\n"
        "                       history (default window 60 s)\n"
        "  slow                 slow-query captures: ANALYZE + trace\n"
        "                       diagnostics for over-threshold requests\n"
        "  record [sub]         workload recorder: status|on|off|clear, or\n"
        "                       export recorded queries for `run` to replay\n"
        "  serve [port]         start the online server (0/none = ephemeral)\n"
        "  serve stop           stop the online server\n"
        "  client <port> <req>  send one protocol request (QUERY/UPDATE/\n"
        "                       EXPLAIN/ANALYZE/TRACE/STATS/METRICS/\n"
        "                       HISTORY/SLOW/QUIT) and print the response\n"
        "  load <ds> [scale]    load a dataset: scale is tiny|demo|full or\n"
        "                       a triple target like 100k, 1m (up to 200m)\n"
        "  gen <ds> [scale]     dry-run generation: triple count, timing,\n"
        "                       and bytes/triple without loading the engine\n"
        "  layout [mode]        auto|sorted|compact store layout (compact =\n"
        "                       CSR shards + front-coded dictionary)\n"
        "  threads <n>          size the thread pool (0=auto, 1=serial)\n"
        "  exec-threads <n>     pin intra-query dop (0=auto budget)\n"
        "  shards [n]           hash shards per index family (0=auto;\n"
        "                       results never change, rebuild/publish do)\n"
        "  quit\n");
  }

  Status Inspect(uint32_t mask) {
    if (mask >= engine_.lattice().size()) {
      return Status::InvalidArgument("mask out of range");
    }
    const core::LatticeProfile* profile = engine_.profile();
    const core::ViewStats& stats = profile->ForMask(mask);
    std::printf("view %s (mask %u): rows=%llu triples=%llu nodes=%llu bytes=%s\n",
                engine_.facet().MaskLabel(mask).c_str(), mask,
                static_cast<unsigned long long>(stats.result_rows),
                static_cast<unsigned long long>(stats.encoded_triples),
                static_cast<unsigned long long>(stats.encoded_nodes),
                FormatBytes(stats.encoded_bytes).c_str());
    // Show a sample of the view contents (the data the demo GUI displays
    // when a lattice node is clicked).
    sparql::QueryEngine qe(engine_.store());
    SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result,
                           qe.Execute(engine_.facet().ViewQuerySparql(mask)));
    std::printf("%s", result.ToTable(6).c_str());
    return Status::OK();
  }

  Status Select(const std::string& model_name, size_t k) {
    SOFOS_ASSIGN_OR_RETURN(core::CostModelKind kind,
                           core::ParseCostModelKind(model_name));
    // Re-selection after updates must not optimize against stale
    // statistics: re-profile first (which also re-anchors the staleness
    // baseline).
    if (engine_.staleness_monitor().drift() > 0) {
      std::printf("profile is stale (drift %.3f): re-profiling\n",
                  engine_.staleness_monitor().drift());
      SOFOS_RETURN_IF_ERROR(engine_.Profile().status());
    }
    SOFOS_ASSIGN_OR_RETURN(auto model, engine_.MakeModel(kind));
    SOFOS_ASSIGN_OR_RETURN(pending_, engine_.SelectViews(*model, k));
    std::printf("selection: %s (%.1f us)\n",
                pending_.ToString(engine_.facet()).c_str(),
                pending_.selection_micros);
    has_pending_ = true;
    return Status::OK();
  }

  Status MaterializeUser(const std::vector<uint32_t>& masks) {
    for (uint32_t mask : masks) {
      if (mask >= engine_.lattice().size()) {
        return Status::InvalidArgument("mask out of range");
      }
    }
    pending_ = core::UserSelection(masks);
    has_pending_ = true;
    return Materialize();
  }

  Status Materialize() {
    if (!has_pending_) return Status::InvalidArgument("no pending selection");
    SOFOS_ASSIGN_OR_RETURN(auto views, engine_.MaterializeSelection(pending_));
    for (const auto& view : views) {
      std::printf("materialized %s: %llu rows, %llu triples in %.1f ms\n",
                  engine_.facet().MaskLabel(view.mask).c_str(),
                  static_cast<unsigned long long>(view.rows),
                  static_cast<unsigned long long>(view.triples_added),
                  view.build_micros / 1000.0);
    }
    has_pending_ = false;
    PrintStatus();
    return Status::OK();
  }

  /// Store bytes per current triple (0 on an empty store).
  double BytesPerTriple() const {
    const uint64_t triples = engine_.CurrentTriples();
    return triples == 0 ? 0.0
                        : static_cast<double>(engine_.CurrentBytes()) /
                              static_cast<double>(triples);
  }

  /// `gen`: generation dry run — builds the dataset into a scratch store
  /// (never touching the engine) and reports size and footprint.
  Status Generate(const std::string& name, const std::string& scale_text) {
    SOFOS_ASSIGN_OR_RETURN(datagen::ScaleSpec scale,
                           datagen::ParseScaleSpec(scale_text));
    TripleStore store;
    store.SetShardCount(engine_.ResolvedShardCount());
    WallTimer timer;
    SOFOS_ASSIGN_OR_RETURN(datagen::DatasetSpec spec,
                           datagen::GenerateByName(name, scale, 42, &store));
    const double seconds = timer.ElapsedSeconds();
    const uint64_t triples = store.NumTriples();
    std::printf(
        "%s: %llu triples, %zu terms in %.2fs (%.0f triples/s), "
        "%.1f bytes/triple sorted\n",
        spec.name.c_str(), static_cast<unsigned long long>(triples),
        store.NumTerms(), seconds,
        seconds > 0 ? static_cast<double>(triples) / seconds : 0.0,
        triples == 0 ? 0.0
                     : static_cast<double>(store.MemoryBytes()) /
                           static_cast<double>(triples));
    return Status::OK();
  }

  void PrintStatus() {
    std::printf("triples: %llu (base %llu), amplification %.2fx, "
                "%.1f bytes/triple (%s layout), views:",
                static_cast<unsigned long long>(engine_.CurrentTriples()),
                static_cast<unsigned long long>(engine_.BaseTriples()),
                engine_.StorageAmplification(), BytesPerTriple(),
                engine_.store()->compact_layout() ? "compact" : "sorted");
    for (uint32_t mask : engine_.MaterializedMasks()) {
      std::printf(" %s", engine_.facet().MaskLabel(mask).c_str());
    }
    std::printf("\n");
  }

  Status MakeWorkload(int n) {
    workload::WorkloadGenerator generator(&engine_.facet(), engine_.store());
    workload::WorkloadOptions options;
    options.num_queries = n;
    options.seed = 7;
    SOFOS_ASSIGN_OR_RETURN(queries_, generator.Generate(options));
    std::printf("generated %zu queries\n", queries_.size());
    return Status::OK();
  }

  Status RunWorkload() {
    if (queries_.empty()) SOFOS_RETURN_IF_ERROR(MakeWorkload(20));
    SOFOS_ASSIGN_OR_RETURN(auto with, engine_.RunWorkload(queries_, true));
    SOFOS_ASSIGN_OR_RETURN(auto without, engine_.RunWorkload(queries_, false));
    std::printf("with views:    %s\n", with.Summary().c_str());
    std::printf("without views: %s\n", without.Summary().c_str());
    if (with.mean_micros > 0) {
      std::printf("mean speedup: %.2fx\n",
                  without.mean_micros / with.mean_micros);
    }
    return Status::OK();
  }

  Status Train() {
    core::LearnedTrainingOptions options;
    options.repetitions = 1;
    options.epochs = 200;
    SOFOS_RETURN_IF_ERROR(core::TrainLearnedModel(&engine_, options).status());
    std::printf("learned cost model trained\n");
    return Status::OK();
  }

  /// The "hands-on challenge" (demo step 5): oracle best-k by measured
  /// runtimes vs each cost model's pick.
  Status Challenge(size_t k) {
    if (queries_.empty()) SOFOS_RETURN_IF_ERROR(MakeWorkload(20));
    const size_t n = engine_.lattice().size();

    // Measured answer-cost matrix from the full lattice.
    SOFOS_RETURN_IF_ERROR(engine_.DropMaterializedViews());
    SOFOS_RETURN_IF_ERROR(
        engine_.MaterializeViews(engine_.lattice().AllMasks()).status());
    core::Rewriter rewriter(&engine_.facet());
    sparql::QueryEngine qe(engine_.store());
    std::vector<std::vector<double>> cost(n, std::vector<double>(n + 1, 1e18));
    for (uint32_t w = 0; w < n; ++w) {
      core::QuerySignature sig;
      sig.group_mask = w;
      for (uint32_t v = 0; v < n; ++v) {
        if (!core::Lattice::CanAnswer(v, w)) continue;
        SOFOS_ASSIGN_OR_RETURN(std::string rewritten,
                               rewriter.RewriteToView(sig, v));
        WallTimer timer;
        SOFOS_RETURN_IF_ERROR(qe.Execute(rewritten).status());
        cost[w][v] = timer.ElapsedMicros();
      }
      WallTimer timer;
      SOFOS_RETURN_IF_ERROR(
          qe.Execute(engine_.facet().CanonicalQuerySparql(w)).status());
      cost[w][n] = timer.ElapsedMicros();
    }
    SOFOS_RETURN_IF_ERROR(engine_.DropMaterializedViews());

    SOFOS_ASSIGN_OR_RETURN(auto oracle,
                           core::OracleSelection(engine_.lattice(), k, cost));
    std::printf("oracle best-%zu: %s (expected %.1f us/query)\n", k,
                oracle.ToString(engine_.facet()).c_str(), oracle.benefits[0]);
    for (core::CostModelKind kind :
         {core::CostModelKind::kTripleCount, core::CostModelKind::kAggValueCount,
          core::CostModelKind::kNodeCount}) {
      SOFOS_ASSIGN_OR_RETURN(auto model, engine_.MakeModel(kind));
      SOFOS_ASSIGN_OR_RETURN(auto selection, engine_.SelectViews(*model, k));
      std::printf("%-10s picks %s\n", (*model).name().c_str(),
                  selection.ToString(engine_.facet()).c_str());
    }
    return Status::OK();
  }

  /// The evolving-KG scenario: random insert/delete batches stream into
  /// the base graph; views are repaired incrementally and the staleness
  /// monitor says when the selection is worth redoing.
  Status Update(int batches, double fraction) {
    if (batches < 1 || fraction <= 0 || fraction > 1) {
      return Status::InvalidArgument(
          "usage: update [batches >= 1] [0 < fraction <= 1]");
    }
    workload::UpdateStreamOptions options;
    options.num_batches = batches;
    options.batch_fraction = fraction;
    options.seed = 99 + update_batches_applied_;  // fresh stream per call
    SOFOS_ASSIGN_OR_RETURN(
        auto stream,
        workload::GenerateUpdateStream(engine_.base_snapshot(),
                                       engine_.store()->dictionary(), options));
    bool recommend = false;
    for (const auto& delta : stream) {
      SOFOS_ASSIGN_OR_RETURN(auto outcome, engine_.ApplyUpdates(delta));
      ++update_batches_applied_;
      std::printf("batch %llu: %s\n",
                  static_cast<unsigned long long>(update_batches_applied_),
                  outcome.Summary().c_str());
      recommend = outcome.reselect_recommended;
    }
    PrintStatus();
    if (recommend) {
      std::printf(
          "selection drifted past the staleness threshold: re-optimize with "
          "`drop`, then `select <model> <k>` + `materialize`\n");
    }
    return Status::OK();
  }

  /// `serve [port]` starts the online server over this engine (the REPL
  /// then only accepts `client`/`serve stop`); `serve stop` shuts it down.
  Status Serve(const std::string& arg) {
    if (arg == "stop") {
      if (server_ == nullptr) return Status::InvalidArgument("no server running");
      server_->Stop();
      std::printf("server stopped\n");
      server_.reset();
      return Status::OK();
    }
    if (server_ != nullptr) {
      return Status::InvalidArgument("server already running (serve stop first)");
    }
    server::ServerOptions options;
    // SOFOS_IO_MODE=thread|event selects the serve path (default: the
    // epoll event loop), same switch the bench and test suites use.
    options.io_mode = server::IoModeFromEnv(options.io_mode);
    if (!arg.empty()) {
      char* end = nullptr;
      long port = std::strtol(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || port < 0 || port > 65535) {
        return Status::InvalidArgument("usage: serve [port] | serve stop");
      }
      options.port = static_cast<uint16_t>(port);
    }
    auto server = std::make_unique<server::SofosServer>(&engine_, options);
    SOFOS_RETURN_IF_ERROR(server->Start());
    server_ = std::move(server);
    std::printf(
        "serving on 127.0.0.1:%u [%s io] (line protocol: QUERY <sparql> | "
        "UPDATE [n] [frac] | EXPLAIN [sparql] | ANALYZE [sparql] | TRACE "
        "<sparql> | STATS | METRICS | HISTORY [sec] | SLOW | QUIT)\n",
        server_->port(),
        options.io_mode == server::IoMode::kEventLoop ? "event-loop"
                                                      : "thread-per-session");
    if (server_->http_port() != 0) {
      std::printf(
          "observability http on 127.0.0.1:%u (GET /metrics /stats "
          "/history?window=60 /slow /healthz)\n",
          server_->http_port());
    }
    return Status::OK();
  }

  /// One-shot protocol client: connect, send, print the framed response.
  Status Client(uint16_t port, const std::string& request) {
    if (request.empty()) {
      return Status::InvalidArgument("usage: client <port> <request line>");
    }
    server::BlockingClient client;
    SOFOS_RETURN_IF_ERROR(client.Connect(port));
    SOFOS_ASSIGN_OR_RETURN(server::ClientResponse response,
                           client.Roundtrip(request));
    std::printf("%s\n", response.header.c_str());
    for (const std::string& line : response.body) {
      std::printf("%s\n", line.c_str());
    }
    if (!response.ok()) {
      return Status::Internal("server replied: " + response.header);
    }
    return Status::OK();
  }

  /// `history [sec]`: sliding-window rates and interval percentiles from
  /// the server's telemetry history (the HISTORY verb's body).
  Status History(double window) {
    if (window <= 0) {
      return Status::InvalidArgument("usage: history [window_seconds > 0]");
    }
    if (server_ == nullptr) {
      return Status::InvalidArgument(
          "telemetry history lives in the server's sampler: `serve` first "
          "(or `client <port> HISTORY <sec>` against a remote one)");
    }
    std::printf("%s\n", server_->HistoryJson(window).c_str());
    return Status::OK();
  }

  /// `slow`: the slow-query capture ring (ANALYZE + trace diagnostics for
  /// requests that crossed the server's latency threshold).
  Status Slow() {
    if (server_ == nullptr) {
      return Status::InvalidArgument(
          "slow-query capture runs in the server: `serve` first");
    }
    const server::SlowQueryLog& log = server_->slow_queries();
    std::printf("captured=%llu suppressed=%llu threshold_us=%.1f\n%s\n",
                static_cast<unsigned long long>(log.captured_total()),
                static_cast<unsigned long long>(log.suppressed_total()),
                log.threshold_micros(), log.ToJson().c_str());
    return Status::OK();
  }

  /// `record [on|off|export|clear]`: the engine's workload recorder. With
  /// no argument prints status; `export` loads the replayable recorded
  /// queries into the CLI workload so `run` re-profiles observed traffic.
  Status Record(const std::string& sub) {
    core::WorkloadRecorder* recorder = engine_.recorder();
    if (sub.empty() || sub == "status") {
      std::printf(
          "recorder %s: %zu/%zu entries (recorded %llu, dropped %llu)\n",
          recorder->enabled() ? "on" : "off", recorder->size(),
          recorder->capacity(),
          static_cast<unsigned long long>(recorder->recorded_total()),
          static_cast<unsigned long long>(recorder->dropped_total()));
    } else if (sub == "on" || sub == "off") {
      recorder->Enable(sub == "on");
      std::printf("recorder %s\n", sub.c_str());
    } else if (sub == "clear") {
      recorder->Clear();
      std::printf("recorder cleared\n");
    } else if (sub == "export") {
      std::vector<core::WorkloadQuery> exported = recorder->ExportWorkload();
      if (exported.empty()) {
        return Status::InvalidArgument(
            "no replayable recorded queries yet (cache hits alone carry no "
            "signature)");
      }
      queries_ = std::move(exported);
      std::printf("exported %zu recorded queries into the workload "
                  "(`run` replays them)\n",
                  queries_.size());
    } else {
      return Status::InvalidArgument("usage: record [on|off|export|clear]");
    }
    return Status::OK();
  }

  Status RunSparql(const std::string& query) {
    // Same execution schedule as `explain` describes (pool + exec-threads).
    sparql::QueryEngine qe(engine_.store(), engine_.ExecOptionsFor(0));
    SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result, qe.Execute(query));
    std::printf("%s(%llu rows, %.1f us wall, %.1f us cpu)\n",
                result.ToTable(20).c_str(),
                static_cast<unsigned long long>(result.NumRows()),
                result.stats.exec_micros, result.stats.cpu_micros);
    return Status::OK();
  }

  /// EXPLAIN: logical plan (join order, algorithms, build/probe sides) plus
  /// the physical schedule (morsel count, dop) under the current knobs. If
  /// no query is given, explains the facet's root-view query — the one the
  /// offline pipeline and the maintenance path keep re-evaluating.
  Status Explain(const std::string& query) {
    std::string text = query;
    size_t first = text.find_first_not_of(" \t");
    text = first == std::string::npos ? std::string() : text.substr(first);
    if (text.empty()) {
      text = engine_.facet().ViewQuerySparql(engine_.facet().FullMask());
      std::printf("(root view query)\n");
    }
    SOFOS_ASSIGN_OR_RETURN(std::string plan, engine_.ExplainSparql(text));
    std::printf("%s", plan.c_str());
    return Status::OK();
  }

  /// EXPLAIN ANALYZE: runs the query with per-operator instrumentation and
  /// prints the plan annotated with actual rows/batches/micros (defaults to
  /// the root-view query like `explain`).
  Status Analyze(const std::string& query) {
    std::string text = query;
    size_t first = text.find_first_not_of(" \t");
    text = first == std::string::npos ? std::string() : text.substr(first);
    if (text.empty()) {
      text = engine_.facet().ViewQuerySparql(engine_.facet().FullMask());
      std::printf("(root view query)\n");
    }
    sparql::QueryEngine qe(engine_.store(), engine_.ExecOptionsFor(0));
    SOFOS_ASSIGN_OR_RETURN(std::string annotated, qe.Analyze(text));
    std::printf("%s", annotated.c_str());
    return Status::OK();
  }

  /// Runs the query with span tracing enabled and prints the span tree as
  /// JSON (defaults to the root-view query like `explain`).
  Status Trace(const std::string& query) {
    std::string text = query;
    size_t first = text.find_first_not_of(" \t");
    text = first == std::string::npos ? std::string() : text.substr(first);
    if (text.empty()) {
      text = engine_.facet().ViewQuerySparql(engine_.facet().FullMask());
      std::printf("(root view query)\n");
    }
    TraceContext trace;
    sparql::ExecOptions options = engine_.ExecOptionsFor(0);
    options.trace = &trace;
    sparql::QueryEngine qe(engine_.store(), options);
    SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result, qe.Execute(text));
    std::printf("%llu rows, %.1f us wall, %zu spans\n%s\n",
                static_cast<unsigned long long>(result.NumRows()),
                result.stats.exec_micros, trace.Spans().size(),
                trace.ToJson().c_str());
    return Status::OK();
  }

  /// `stats pretty`: the registry snapshot as aligned tables — counters,
  /// gauges, then latency histograms (count + p50/p95/p99/mean).
  void PrintStatsPretty() {
    std::vector<MetricSample> samples = engine_.metrics()->Collect();
    TablePrinter counters({"counter", "value"});
    TablePrinter gauges({"gauge", "value"});
    TablePrinter latencies(
        {"latency", "count", "p50_us", "p95_us", "p99_us", "mean_us"});
    for (const MetricSample& s : samples) {
      switch (s.kind) {
        case MetricSample::Kind::kCounter:
          counters.AddRow({s.name, TablePrinter::Cell(s.counter_value)});
          break;
        case MetricSample::Kind::kGauge:
          gauges.AddRow({s.name, TablePrinter::Cell(s.gauge_value, 2)});
          break;
        case MetricSample::Kind::kHistogram:
          latencies.AddRow({s.name, TablePrinter::Cell(s.histogram.count),
                            TablePrinter::Cell(s.histogram.P50(), 1),
                            TablePrinter::Cell(s.histogram.P95(), 1),
                            TablePrinter::Cell(s.histogram.P99(), 1),
                            TablePrinter::Cell(s.histogram.MeanMicros(), 1)});
          break;
      }
    }
    if (counters.num_rows()) counters.Print();
    if (gauges.num_rows()) gauges.Print();
    if (latencies.num_rows()) latencies.Print();
    if (!counters.num_rows() && !gauges.num_rows() && !latencies.num_rows()) {
      std::printf("(no metrics recorded yet)\n");
    }
    PrintTopViews();
  }

  /// `top`: per-view traffic *rates* over the trailing minute, derived
  /// from the serving telemetry history (lifetime counters say which view
  /// was ever hot; rates say which one is hot now). Prints nothing until
  /// the sampler has two samples inside the window.
  void PrintTopViews() {
    if (server_ == nullptr || server_->telemetry() == nullptr) return;
    TelemetryWindow window = server_->telemetry()->Window(60.0);
    if (!window.valid) return;
    const std::string kHits = "sofos_view_hits_total{view=\"";
    const std::string kBenefit = "sofos_view_benefit_rows_total{view=\"";
    TablePrinter top({"view", "hits_per_s", "benefit_rows_per_s"});
    for (const auto& [name, rate] : window.rates) {
      if (name.rfind(kHits, 0) != 0 || name.size() < kHits.size() + 2) {
        continue;
      }
      std::string label =
          name.substr(kHits.size(), name.size() - kHits.size() - 2);
      double benefit_per_s = 0.0;
      auto it = window.rates.find(kBenefit + label + "\"}");
      if (it != window.rates.end()) benefit_per_s = it->second.per_second;
      top.AddRow({label, TablePrinter::Cell(rate.per_second, 2),
                  TablePrinter::Cell(benefit_per_s, 2)});
    }
    if (top.num_rows()) {
      std::printf("top views (trailing %.0fs):\n", window.window_seconds);
      top.Print();
    }
  }

  core::SofosEngine engine_;
  datagen::DatasetSpec spec_;
  core::SelectionResult pending_;
  bool has_pending_ = false;
  bool had_error_ = false;
  std::vector<core::WorkloadQuery> queries_;
  uint64_t update_batches_applied_ = 0;
  std::unique_ptr<server::SofosServer> server_;  // live while `serve` is on
};

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = argc > 1 ? argv[1] : "geopop";
  std::string scale_name = argc > 2 ? argv[2] : "tiny";
  auto scale = sofos::datagen::ParseScaleSpec(scale_name);
  if (!scale.ok()) {
    std::fprintf(stderr, "%s\n", scale.status().ToString().c_str());
    return 1;
  }
  Cli cli;
  if (argc > 3) {
    char* end = nullptr;
    long n = std::strtol(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0' || n < 0 ||
        n > static_cast<long>(sofos::ThreadPool::kMaxThreads)) {
      std::fprintf(stderr, "invalid num_threads '%s' (expected 0..%zu)\n",
                   argv[3], sofos::ThreadPool::kMaxThreads);
      return 1;
    }
    cli.SetNumThreads(static_cast<unsigned>(n));
  }
  sofos::Status status = cli.LoadDataset(dataset, *scale);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  cli.Repl();
  // Nonzero when any command failed, so piped scripts and CI smoke tests
  // can detect errors instead of parsing stdout.
  return cli.had_error() ? 1 : 0;
}
