/// Quickstart: the smallest complete SOFOS pipeline.
///
/// Builds the paper's Figure 1 geography graph, declares the population
/// facet, selects 3 views with the triple-count cost model, materializes
/// them, and answers two analytical queries — one from a view, one from the
/// base graph — printing timings for both.
///
///   ./quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/training.h"
#include "datagen/geo.h"
#include "workload/generator.h"

namespace {

int Run() {
  using namespace sofos;

  // 1. Generate a small DBpedia-style knowledge graph (paper Figure 1).
  TripleStore store;
  datagen::GeoPopConfig config;
  config.num_countries = 30;
  config.num_languages = 12;
  datagen::DatasetSpec spec = datagen::GenerateGeoPop(config, &store);
  std::printf("graph: %zu triples, %llu nodes\n", store.NumTriples(),
              static_cast<unsigned long long>(store.NumNodes()));

  // 2. Declare the analytical facet F = <X, P, agg(u)>.
  auto facet = core::Facet::FromSparql(spec.facet_sparql, spec.name,
                                       spec.dim_labels);
  if (!facet.ok()) {
    std::fprintf(stderr, "facet error: %s\n", facet.status().ToString().c_str());
    return 1;
  }

  core::SofosEngine engine;
  if (Status s = engine.LoadStore(std::move(store)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  (void)engine.SetFacet(std::move(facet).value());

  // 3. Profile the lattice of views (2^4 = 16 candidates).
  auto profile = engine.Profile();
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("lattice: %zu candidate views profiled in %.1f ms\n",
              (*profile)->views.size(), (*profile)->profile_micros / 1000.0);

  // 4. Select k = 3 views with the triple-count cost model and materialize.
  auto model = engine.MakeModel(core::CostModelKind::kTripleCount);
  auto selection = engine.SelectViews(**model, 3);
  std::printf("selected: %s\n",
              selection->ToString(engine.facet()).c_str());
  auto views = engine.MaterializeSelection(*selection);
  if (!views.ok()) {
    std::fprintf(stderr, "%s\n", views.status().ToString().c_str());
    return 1;
  }
  std::printf("materialized %zu views; storage amplification %.2fx\n",
              views->size(), engine.StorageAmplification());

  // 5. Answer an analytical query ("total population per language").
  core::WorkloadQuery query;
  query.id = "per-language";
  query.signature.group_mask = 0b0100;  // ?language is dimension 2
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?language (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "} GROUP BY ?language";

  auto with_views = engine.Answer(query, /*allow_views=*/true);
  auto without = engine.Answer(query, /*allow_views=*/false);
  if (!with_views.ok() || !without.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("\nanswered from %s in %.1f us (base graph: %.1f us, %.1fx)\n",
              with_views->used_view
                  ? engine.facet().MaskLabel(with_views->view_mask).c_str()
                  : "base graph",
              with_views->micros, without->micros,
              without->micros / with_views->micros);
  std::printf("%s\n", with_views->result.ToTable(8).c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
