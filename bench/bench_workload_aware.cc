/// E10 (ablation) — uniform HRU weights vs workload-aware weights in the
/// greedy selector (§3 says queries are generated from the facet; real
/// workloads are skewed, and the selector supports empirical weights).
/// Expected: on skewed workloads the workload-aware selection wins; on
/// uniform workloads the two coincide or tie.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

/// Empirical needed-mask distribution of a workload.
core::QueryWeights WeightsOf(const std::vector<core::WorkloadQuery>& queries,
                             size_t lattice_size) {
  core::QueryWeights weights(lattice_size, 0.0);
  for (const auto& query : queries) {
    weights[query.signature.NeededMask()] += 1.0 / queries.size();
  }
  return weights;
}

/// Skews a workload: `hot_fraction` of the queries get the same shape.
void Skew(std::vector<core::WorkloadQuery>* queries, const core::Facet& facet,
          uint32_t hot_mask, double hot_fraction) {
  size_t hot = static_cast<size_t>(hot_fraction * queries->size());
  for (size_t i = 0; i < hot && i < queries->size(); ++i) {
    core::WorkloadQuery& query = (*queries)[i];
    query.signature = core::QuerySignature{};
    query.signature.group_mask = hot_mask;
    std::string select = "SELECT";
    std::string group;
    for (size_t d = 0; d < facet.num_dims(); ++d) {
      if ((hot_mask >> d) & 1u) {
        select += " ?" + facet.dims()[d].var;
        group += " ?" + facet.dims()[d].var;
      }
    }
    select += " (" + sparql::AggKindName(facet.agg_kind()) + "(?" +
              facet.agg_var() + ") AS ?agg)";
    std::string where = " WHERE {\n";
    for (const auto& tp : facet.pattern()) where += "  " + tp.ToString() + " .\n";
    where += "}";
    query.sparql = select + where;
    if (!group.empty()) query.sparql += " GROUP BY" + group;
  }
}

}  // namespace

int main() {
  std::printf("E10 | Ablation: uniform vs workload-aware greedy weights\n");
  const size_t k = 3;

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);
    core::TripleCountCostModel model;

    std::printf("\n[%s]\n\n", name.c_str());
    TablePrinter table({"workload", "weights", "mean us", "median us", "hits"});

    for (double hot_fraction : {0.0, 0.8}) {
      workload::WorkloadGenerator generator(&engine.facet(), engine.store());
      workload::WorkloadOptions options;
      options.num_queries = 30;
      options.seed = 321;
      auto queries = generator.Generate(options);
      if (!queries.ok()) return 1;
      if (hot_fraction > 0) {
        Skew(&*queries, engine.facet(), /*hot_mask=*/0b0011, hot_fraction);
      }
      auto weights = WeightsOf(*queries, engine.lattice().size());

      for (bool aware : {false, true}) {
        auto selection =
            engine.SelectViews(model, k, aware ? &weights : nullptr);
        if (!selection.ok()) return 1;
        if (!engine.MaterializeSelection(*selection).ok()) return 1;
        auto report = engine.RunWorkload(*queries, true);
        if (!report.ok()) return 1;
        table.AddRow({hot_fraction > 0 ? "skewed (80% hot)" : "uniform",
                      aware ? "workload-aware" : "uniform HRU",
                      TablePrinter::Cell(report->mean_micros, 1),
                      TablePrinter::Cell(report->median_micros, 1),
                      TablePrinter::Cell(report->view_hits)});
        if (!engine.DropMaterializedViews().ok()) return 1;
      }
    }
    table.Print();
  }
  return 0;
}
