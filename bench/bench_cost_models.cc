/// E3 — demo "Exploring Cost Models" (the headline experiment): the six
/// cost models compared on selection time, storage amplification, and
/// workload query time across the three datasets.
///
/// Expected shape (DESIGN.md): all materialized configurations beat the
/// no-view baseline; informative models beat Random; no single model
/// dominates across datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/training.h"
#include "workload/generator.h"

int main() {
  using namespace sofos;
  const size_t k = 4;
  const int workload_size = 30;
  std::printf("E3 | Cost model comparison (k = %zu views, %d-query workloads)\n",
              k, workload_size);

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);

    // Train the learned model once per dataset (full-lattice probe + rollback).
    core::LearnedTrainingOptions train_options;
    train_options.repetitions = 1;
    train_options.epochs = 200;
    if (!core::TrainLearnedModel(&engine, train_options).ok()) return 1;

    workload::WorkloadGenerator generator(&engine.facet(), engine.store());
    workload::WorkloadOptions options;
    options.num_queries = workload_size;
    options.seed = 1234;
    auto queries = generator.Generate(options);
    if (!queries.ok()) return 1;

    auto baseline = engine.RunWorkload(*queries, /*allow_views=*/false);
    if (!baseline.ok()) return 1;

    std::printf("\n[%s] baseline (no views): mean %s, median %s\n\n",
                name.c_str(), FormatMicros(baseline->mean_micros).c_str(),
                FormatMicros(baseline->median_micros).c_str());

    TablePrinter table({"model", "sel us", "mat ms", "ampl", "mean us",
                        "median us", "speedup", "hits"});
    for (core::CostModelKind kind :
         {core::CostModelKind::kRandom, core::CostModelKind::kTripleCount,
          core::CostModelKind::kAggValueCount, core::CostModelKind::kNodeCount,
          core::CostModelKind::kLearned}) {
      auto model = engine.MakeModel(kind);
      if (!model.ok()) return 1;
      auto selection = engine.SelectViews(**model, k);
      if (!selection.ok()) return 1;
      auto views = engine.MaterializeSelection(*selection);
      if (!views.ok()) return 1;
      double mat_ms = 0;
      for (const auto& view : *views) mat_ms += view.build_micros / 1000.0;

      auto report = engine.RunWorkload(*queries, /*allow_views=*/true);
      if (!report.ok()) return 1;

      table.AddRow(
          {(*model)->name(), TablePrinter::Cell(selection->selection_micros, 1),
           TablePrinter::Cell(mat_ms, 1),
           TablePrinter::Cell(engine.StorageAmplification(), 2),
           TablePrinter::Cell(report->mean_micros, 1),
           TablePrinter::Cell(report->median_micros, 1),
           TablePrinter::Cell(baseline->mean_micros / report->mean_micros, 2),
           StrFormat("%llu/%d",
                     static_cast<unsigned long long>(report->view_hits),
                     workload_size)});
      if (!engine.DropMaterializedViews().ok()) return 1;
    }

    // The sixth model: a user selection (here: the two middle levels the
    // demo audience typically picks first).
    auto user = core::UserSelection({engine.facet().FullMask(), 0b0011, 0b0101,
                                     0b0110});
    if (!engine.MaterializeSelection(user).ok()) return 1;
    auto report = engine.RunWorkload(*queries, true);
    if (!report.ok()) return 1;
    table.AddRow({"user", "-", "-",
                  TablePrinter::Cell(engine.StorageAmplification(), 2),
                  TablePrinter::Cell(report->mean_micros, 1),
                  TablePrinter::Cell(report->median_micros, 1),
                  TablePrinter::Cell(baseline->mean_micros / report->mean_micros, 2),
                  StrFormat("%llu/%d",
                            static_cast<unsigned long long>(report->view_hits),
                            workload_size)});
    (void)engine.DropMaterializedViews();
    table.Print();
  }
  return 0;
}
