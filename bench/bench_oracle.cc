/// E5 — demo "Hands-on Challenge": the optimal k-view selection (exhaustive
/// oracle over measured per-view runtimes) versus what each cost model
/// picks; reports each model's regret. Expected: greedy selections are
/// near-oracle, Random shows the largest regret.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/training.h"
#include "sparql/query_engine.h"

namespace {

using namespace sofos;

/// Measured cost matrix: answer_cost[w][v] = micros to answer the canonical
/// query of lattice node w from materialized view v (1e18 if not
/// answerable); last column = micros from the base graph.
Result<std::vector<std::vector<double>>> MeasureMatrix(core::SofosEngine* engine) {
  const size_t n = engine->lattice().size();
  std::vector<std::vector<double>> cost(n, std::vector<double>(n + 1, 1e18));

  SOFOS_RETURN_IF_ERROR(
      engine->MaterializeViews(engine->lattice().AllMasks()).status());
  core::Rewriter rewriter(&engine->facet());
  sparql::QueryEngine qe(engine->store());
  for (uint32_t w = 0; w < n; ++w) {
    core::QuerySignature sig;
    sig.group_mask = w;
    for (uint32_t v = 0; v < n; ++v) {
      if (!core::Lattice::CanAnswer(v, w)) continue;
      SOFOS_ASSIGN_OR_RETURN(std::string rewritten, rewriter.RewriteToView(sig, v));
      // Median of 3 to stabilize micro-timings.
      std::vector<double> times;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer timer;
        SOFOS_RETURN_IF_ERROR(qe.Execute(rewritten).status());
        times.push_back(timer.ElapsedMicros());
      }
      cost[w][v] = bench::Median(times);
    }
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      SOFOS_RETURN_IF_ERROR(
          qe.Execute(engine->facet().CanonicalQuerySparql(w)).status());
      times.push_back(timer.ElapsedMicros());
    }
    cost[w][n] = bench::Median(times);
  }
  SOFOS_RETURN_IF_ERROR(engine->DropMaterializedViews());
  return cost;
}

/// Expected per-query cost of a selection under the measured matrix.
double ScoreSelection(const std::vector<uint32_t>& views,
                      const std::vector<std::vector<double>>& cost) {
  const size_t n = cost.size();
  double total = 0;
  for (uint32_t w = 0; w < n; ++w) {
    double cheapest = cost[w][n];
    for (uint32_t v : views) {
      if (core::Lattice::CanAnswer(v, w)) {
        cheapest = std::min(cheapest, cost[w][v]);
      }
    }
    total += cheapest;
  }
  return total / static_cast<double>(n);
}

}  // namespace

int main() {
  const size_t k = 3;
  std::printf("E5 | Hands-on challenge: oracle vs cost models (k = %zu)\n", k);

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kTiny);

    core::LearnedTrainingOptions train_options;
    train_options.repetitions = 1;
    train_options.epochs = 200;
    if (!core::TrainLearnedModel(&engine, train_options).ok()) return 1;

    auto matrix = MeasureMatrix(&engine);
    if (!matrix.ok()) {
      std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
      return 1;
    }

    auto oracle = core::OracleSelection(engine.lattice(), k, *matrix);
    if (!oracle.ok()) return 1;
    double oracle_score = ScoreSelection(oracle->views, *matrix);

    std::printf("\n[%s] oracle: %s -> %.1f us/query (enumerated in %.1f ms)\n\n",
                name.c_str(), oracle->ToString(engine.facet()).c_str(),
                oracle_score, oracle->selection_micros / 1000.0);

    auto views_label = [&](const std::vector<uint32_t>& views) {
      std::string out;
      for (uint32_t mask : views) out += engine.facet().MaskLabel(mask);
      return out;
    };
    sofos::TablePrinter table({"model", "selection", "us/query", "regret"});
    table.AddRow({"oracle", views_label(oracle->views),
                  sofos::TablePrinter::Cell(oracle_score, 1), "1.00x"});
    for (core::CostModelKind kind :
         {core::CostModelKind::kRandom, core::CostModelKind::kTripleCount,
          core::CostModelKind::kAggValueCount, core::CostModelKind::kNodeCount,
          core::CostModelKind::kLearned}) {
      auto model = engine.MakeModel(kind);
      if (!model.ok()) return 1;
      auto selection = engine.SelectViews(**model, k);
      if (!selection.ok()) return 1;
      double score = ScoreSelection(selection->views, *matrix);
      table.AddRow({(*model)->name(), views_label(selection->views),
                    sofos::TablePrinter::Cell(score, 1),
                    sofos::TablePrinter::Cell(score / oracle_score, 2) + "x"});
    }
    table.Print();
  }
  return 0;
}
