/// E1 — demo "Configuration" step: the three datasets and their facets,
/// with the statistics the demo GUI presents when a dataset is chosen.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main() {
  using namespace sofos;
  std::printf("E1 | Datasets and facets (paper §4 'Configuration')\n\n");

  TablePrinter table({"dataset", "triples", "nodes", "predicates", "facet dims",
                      "lattice", "pattern rows", "store bytes"});
  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);
    const core::LatticeProfile* profile = engine.profile();
    table.AddRow({name, TablePrinter::Cell(engine.CurrentTriples()),
                  TablePrinter::Cell(uint64_t{engine.store()->NumNodes()}),
                  TablePrinter::Cell(uint64_t{engine.store()->NumPredicates()}),
                  TablePrinter::Cell(uint64_t{engine.facet().num_dims()}),
                  TablePrinter::Cell(uint64_t{engine.lattice().size()}),
                  TablePrinter::Cell(profile->base_pattern_rows),
                  FormatBytes(engine.CurrentBytes())});
  }
  table.Print();

  std::printf("\nFacet templates:\n");
  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kTiny);
    std::printf("\n[%s]\n%s\n", name.c_str(),
                engine.facet().ToSparql().c_str());
  }
  return 0;
}
