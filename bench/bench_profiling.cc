/// E9 — profiling ablation: exact per-view statistics versus the sampled
/// estimator, across sample rates. Reports profiling time, the estimation
/// error on view cardinalities, and whether the cheaper statistics change
/// the greedy selection.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace sofos;
  std::printf("E9 | Exact vs sampled lattice profiling\n");

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);

    // Exact reference.
    auto exact = engine.Profile();
    if (!exact.ok()) return 1;
    std::vector<uint64_t> exact_rows;
    for (const auto& v : (*exact)->views) exact_rows.push_back(v.result_rows);
    double exact_ms = (*exact)->profile_micros / 1000.0;

    core::TripleCountCostModel model;
    auto exact_selection = engine.SelectViews(model, 4);
    if (!exact_selection.ok()) return 1;
    std::set<uint32_t> exact_set(exact_selection->views.begin(),
                                 exact_selection->views.end());

    std::printf("\n[%s] exact profile: %.1f ms; greedy(triples, k=4) = %s\n\n",
                name.c_str(), exact_ms,
                exact_selection->ToString(engine.facet()).c_str());

    TablePrinter table({"mode", "rate", "profile ms", "mean rel err",
                        "max rel err", "selection overlap"});
    table.AddRow({"exact", "1.00", TablePrinter::Cell(exact_ms, 1), "0.00",
                  "0.00", "4/4"});

    for (double rate : {0.01, 0.05, 0.10, 0.25, 0.50}) {
      core::ProfileOptions options;
      options.mode = core::ProfileMode::kSampled;
      options.sample_rate = rate;
      auto sampled = engine.Profile(options);
      if (!sampled.ok()) return 1;

      double sum_err = 0, max_err = 0;
      size_t counted = 0;
      for (uint32_t mask = 0; mask < exact_rows.size(); ++mask) {
        if (mask == engine.facet().FullMask() || mask == 0) continue;  // exact
        double truth = static_cast<double>(exact_rows[mask]);
        double est = static_cast<double>((*sampled)->ForMask(mask).result_rows);
        double err = truth > 0 ? std::fabs(est - truth) / truth : 0.0;
        sum_err += err;
        max_err = std::max(max_err, err);
        ++counted;
      }

      auto selection = engine.SelectViews(model, 4);
      if (!selection.ok()) return 1;
      size_t overlap = 0;
      for (uint32_t mask : selection->views) overlap += exact_set.count(mask);

      table.AddRow({"sampled", TablePrinter::Cell(rate, 2),
                    TablePrinter::Cell((*sampled)->profile_micros / 1000.0, 1),
                    TablePrinter::Cell(sum_err / counted, 3),
                    TablePrinter::Cell(max_err, 3),
                    TablePrinter::Cell(uint64_t{overlap}) + "/4"});
    }
    table.Print();
    // Restore the exact profile for any subsequent use.
    if (!engine.Profile().ok()) return 1;
  }
  std::printf(
      "\nReading: the naive linear scale-up estimator is fast but its\n"
      "cardinality error grows as the sample rate drops, and the error can\n"
      "flip greedy picks — size estimation on KGs is genuinely hard.\n");
  return 0;
}
