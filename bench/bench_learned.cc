/// E7 — the learned cost model's offline phase (paper §3.1): train the deep
/// regression on measured runtimes, evaluate generalization on held-out
/// views, and compare its ranking quality against the heuristic models.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/training.h"

int main() {
  using namespace sofos;
  std::printf("E7 | Learned cost model: training and holdout quality\n");

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);

    core::LearnedTrainingOptions options;
    options.repetitions = 3;
    options.epochs = 300;
    auto samples = core::CollectRuntimeSamples(&engine, options);
    if (!samples.ok()) {
      std::fprintf(stderr, "%s\n", samples.status().ToString().c_str());
      return 1;
    }

    // Leave-4-views-out split (base samples always train).
    Rng rng(7);
    std::vector<size_t> view_indices;
    for (size_t i = 0; i < samples->size(); ++i) {
      if (!(*samples)[i].is_base) view_indices.push_back(i);
    }
    std::vector<size_t> holdout = rng.SampleIndices(view_indices.size(), 4);
    std::vector<bool> is_holdout(samples->size(), false);
    for (size_t h : holdout) is_holdout[view_indices[h]] = true;

    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < samples->size(); ++i) {
      if (is_holdout[i]) {
        test_x.push_back((*samples)[i].features);
        test_y.push_back((*samples)[i].label_log_micros);
      } else {
        train_x.push_back((*samples)[i].features);
        train_y.push_back((*samples)[i].label_log_micros);
      }
    }

    learned::Mlp mlp({static_cast<int>(train_x[0].size()), 32, 16, 1}, 42);
    learned::TrainConfig config;
    config.epochs = options.epochs;
    auto train_mse = mlp.Train(train_x, train_y, config);
    if (!train_mse.ok()) return 1;

    double mae = 0.0;
    std::vector<double> predicted, actual;
    for (size_t i = 0; i < test_x.size(); ++i) {
      double p = mlp.Predict(test_x[i]);
      predicted.push_back(p);
      actual.push_back(test_y[i]);
      mae += std::fabs(p - test_y[i]);
    }
    mae /= static_cast<double>(test_x.size());

    // Express MAE as a multiplicative time factor: e^MAE (labels are log).
    std::printf(
        "\n[%s] %zu samples (%zu train / %zu holdout)\n"
        "  train MSE (log-space): %.4f\n"
        "  holdout MAE (log-space): %.4f  -> within %.2fx of true runtime\n"
        "  holdout rank correlation (Spearman): %.3f\n",
        name.c_str(), samples->size(), train_x.size(), test_x.size(),
        *train_mse, mae, std::exp(mae), bench::Spearman(predicted, actual));
  }
  std::printf(
      "\nReading: the regression recovers runtimes within a small constant\n"
      "factor and ranks unseen views usefully — matching the adaptation of\n"
      "Ortiz et al. the paper describes.\n");
  return 0;
}
