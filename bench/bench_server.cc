/// S1 — online serving under closed-loop load: K client threads each keep
/// one session saturated against a live SofosServer (loopback TCP, line
/// protocol) and measure client-observed latency. Three phases:
///
///   cold   first pass over the query set (result cache empty)
///   warm   repeated passes over the same set (cache-hot)
///   mixed  same traffic with a concurrent UPDATE stream (epoch bumps
///          invalidate the cache; queries keep serving on snapshots)
///
/// plus a telemetry-overhead A/B: the warm phase re-run on a fresh server
/// with the whole observability stack off (no sampler, no recorder, no
/// HTTP listener) and again with it on at an aggressive 0.25 s sampling
/// period — `telemetry_overhead_pct` is the warm-qps cost of always-on
/// telemetry (acceptance: small single digits).
///
///   ./bench_server [json_path]
///
/// With `json_path` the results are written as BENCH_server.json (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh):
/// throughput, p50/p95/p99, and cache hit rate per phase.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/latency_histogram.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kClients = 4;
constexpr int kWarmPasses = 5;
// Telemetry A/B phases: each measured arm runs ~150ms (kAbPasses sweeps)
// and the off/on pair is alternated kAbRounds times — best round per arm —
// so the overhead figure resolves a few-percent delta above run-to-run
// scheduler/frequency noise.
constexpr int kAbPasses = 100;
constexpr int kAbRounds = 3;
// Long enough that the concurrent UPDATE batches land (and invalidate the
// cache) inside the measurement window, not after it.
constexpr int kMixedPasses = 30;
constexpr int kMixedUpdates = 4;

struct PhaseResult {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  LatencyHistogram::Snapshot latency;
  double cache_hit_rate = 0.0;
};

/// Runs one closed-loop phase: every client thread sweeps the query set
/// `passes` times back-to-back; with_updates adds one updater thread
/// issuing small UPDATE batches throughout.
PhaseResult RunPhase(const std::string& name, server::SofosServer* server,
                     const std::vector<core::WorkloadQuery>& queries,
                     int passes, bool with_updates) {
  PhaseResult result;
  result.name = name;

  uint64_t hits_before = server->metrics().cache_hits();
  uint64_t misses_before = server->metrics().cache_misses();

  std::vector<LatencyHistogram> histograms(kClients);
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> updating{with_updates};

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) {
        errors.fetch_add(static_cast<uint64_t>(passes) * queries.size());
        return;
      }
      for (int pass = 0; pass < passes; ++pass) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger start offsets so clients do not sweep in lockstep.
          const auto& query = queries[(q + static_cast<size_t>(c)) % queries.size()];
          WallTimer timer;
          auto response = client.Roundtrip("QUERY " + query.sparql);
          histograms[c].Record(timer.ElapsedMicros());
          if (!response.ok() || !response->ok()) errors.fetch_add(1);
        }
      }
      client.Roundtrip("QUIT");
    });
  }
  std::thread updater;
  if (with_updates) {
    updater = std::thread([&] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) return;
      for (int i = 0; i < kMixedUpdates && updating; ++i) {
        auto response = client.Roundtrip("UPDATE 1 0.005");
        if (!response.ok() || !response->ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      client.Roundtrip("QUIT");
    });
  }
  for (auto& t : clients) t.join();
  updating = false;
  if (updater.joinable()) updater.join();
  result.wall_ms = wall.ElapsedMillis();

  for (const auto& h : histograms) result.latency.Merge(h.TakeSnapshot());
  result.requests = result.latency.count;
  result.errors = errors;
  result.throughput_qps =
      result.wall_ms > 0
          ? static_cast<double>(result.requests) / (result.wall_ms / 1000.0)
          : 0.0;
  uint64_t hits = server->metrics().cache_hits() - hits_before;
  uint64_t misses = server->metrics().cache_misses() - misses_before;
  result.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return result;
}

void WriteJson(const std::string& path, const std::vector<PhaseResult>& phases,
               size_t num_queries, double telemetry_overhead_pct) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"server\",\n");
  std::fprintf(f, "  \"clients\": %d,\n  \"distinct_queries\": %zu,\n",
               kClients, num_queries);
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"requests\": %llu, \"errors\": %llu,\n"
        "     \"wall_ms\": %.1f, \"throughput_qps\": %.1f,\n"
        "     \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"mean_us\": %.1f,\n"
        "     \"cache_hit_rate\": %.4f}%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.errors), p.wall_ms,
        p.throughput_qps, p.latency.P50(), p.latency.P95(), p.latency.P99(),
        p.latency.MeanMicros(), p.cache_hit_rate,
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"telemetry_overhead_pct\": %.2f,\n  ",
               telemetry_overhead_pct);
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("S1 | Online serving: closed-loop loopback load, %d clients\n",
              kClients);

  core::SofosEngine engine;
  bench::LoadEngine(&engine, "geopop", datagen::Scale::kDemo);
  core::TripleCountCostModel model;
  auto selection = engine.SelectViews(model, 3);
  if (!selection.ok() || !engine.MaterializeSelection(*selection).ok()) {
    std::fprintf(stderr, "selection/materialization failed\n");
    return 1;
  }

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 16;
  options.seed = 7;
  auto queries = generator.Generate(options);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  server::ServerOptions server_options;
  server_options.max_sessions = kClients + 2;  // clients + updater headroom
  server::SofosServer server(&engine, server_options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<PhaseResult> phases;
  server.ClearCache();
  phases.push_back(RunPhase("cold", &server, *queries, 1, false));
  phases.push_back(RunPhase("warm", &server, *queries, kWarmPasses, false));
  phases.push_back(RunPhase("mixed", &server, *queries, kMixedPasses, true));
  server.Stop();

  // Telemetry A/B: the same warm sweep on a fresh server with the full
  // observability stack off, then on (sampler at 4 Hz — 4x the serving
  // default — plus recorder and HTTP listener). Each phase warms its own
  // cache with one untimed pass first.
  auto run_telemetry_phase = [&](const std::string& name,
                                 bool telemetry_on) -> PhaseResult {
    server::ServerOptions ab_options;
    ab_options.max_sessions = kClients + 2;
    ab_options.enable_telemetry = telemetry_on;
    ab_options.sample_period_seconds = 0.25;
    ab_options.enable_http = telemetry_on;
    engine.recorder()->Enable(telemetry_on);
    server::SofosServer ab_server(&engine, ab_options);
    if (!ab_server.Start().ok()) {
      std::fprintf(stderr, "telemetry A/B server start failed\n");
      return PhaseResult{};
    }
    RunPhase("warmup", &ab_server, *queries, 1, false);
    PhaseResult result =
        RunPhase(name, &ab_server, *queries, kAbPasses, false);
    ab_server.Stop();
    return result;
  };
  // A single warm sweep finishes in ~10ms on this container — far too
  // short to resolve a few-percent qps delta — and back-to-back phases
  // see ±10% run-order noise (scheduling, frequency). Alternate the two
  // arms for several rounds and compare each arm's best round: the best
  // approximates the arm's true capacity, which is what the overhead
  // figure is about.
  PhaseResult best_off, best_on;
  for (int round = 0; round < kAbRounds; ++round) {
    PhaseResult off = run_telemetry_phase("warm_no_telemetry", false);
    PhaseResult on = run_telemetry_phase("warm_telemetry", true);
    if (off.throughput_qps > best_off.throughput_qps) best_off = off;
    if (on.throughput_qps > best_on.throughput_qps) best_on = on;
  }
  phases.push_back(best_off);
  phases.push_back(best_on);
  engine.recorder()->Enable(true);
  const double qps_off = best_off.throughput_qps;
  const double qps_on = best_on.throughput_qps;
  const double telemetry_overhead_pct =
      qps_off > 0 ? (1.0 - qps_on / qps_off) * 100.0 : 0.0;

  TablePrinter table({"phase", "requests", "errors", "wall ms", "qps",
                      "p50 us", "p95 us", "p99 us", "hit rate"});
  for (const PhaseResult& p : phases) {
    table.AddRow({p.name, TablePrinter::Cell(p.requests),
                  TablePrinter::Cell(p.errors),
                  TablePrinter::Cell(p.wall_ms, 1),
                  TablePrinter::Cell(p.throughput_qps, 1),
                  TablePrinter::Cell(p.latency.P50(), 1),
                  TablePrinter::Cell(p.latency.P95(), 1),
                  TablePrinter::Cell(p.latency.P99(), 1),
                  TablePrinter::Cell(p.cache_hit_rate, 3)});
  }
  table.Print();
  std::printf("telemetry overhead: %.2f%% of warm qps\n",
              telemetry_overhead_pct);

  if (argc > 1) {
    WriteJson(argv[1], phases, queries->size(), telemetry_overhead_pct);
  }

  std::printf(
      "\nReading: warm beats cold by the cache-hit margin (a hit skips\n"
      "parsing, routing, and execution); mixed shows epoch-snapshot\n"
      "serving under concurrent updates — hit rate drops with each epoch\n"
      "bump, correctness never does. The warm_no_telemetry/warm_telemetry\n"
      "pair isolates the cost of the sampler + recorder + HTTP listener.\n");
  return phases.back().errors == 0 ? 0 : 1;
}
