/// S1 — online serving under closed-loop load: K client threads each keep
/// one session saturated against a live SofosServer (loopback TCP, line
/// protocol) and measure client-observed latency. Three phases:
///
///   cold   first pass over the query set (result cache empty)
///   warm   repeated passes over the same set (cache-hot)
///   mixed  same traffic with a concurrent UPDATE stream (epoch bumps
///          invalidate the cache; queries keep serving on snapshots)
///
///   ./bench_server [json_path]
///
/// With `json_path` the results are written as BENCH_server.json (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh):
/// throughput, p50/p95/p99, and cache hit rate per phase.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/latency_histogram.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kClients = 4;
constexpr int kWarmPasses = 5;
// Long enough that the concurrent UPDATE batches land (and invalidate the
// cache) inside the measurement window, not after it.
constexpr int kMixedPasses = 30;
constexpr int kMixedUpdates = 4;

struct PhaseResult {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  LatencyHistogram::Snapshot latency;
  double cache_hit_rate = 0.0;
};

/// Runs one closed-loop phase: every client thread sweeps the query set
/// `passes` times back-to-back; with_updates adds one updater thread
/// issuing small UPDATE batches throughout.
PhaseResult RunPhase(const std::string& name, server::SofosServer* server,
                     const std::vector<core::WorkloadQuery>& queries,
                     int passes, bool with_updates) {
  PhaseResult result;
  result.name = name;

  uint64_t hits_before = server->metrics().cache_hits();
  uint64_t misses_before = server->metrics().cache_misses();

  std::vector<LatencyHistogram> histograms(kClients);
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> updating{with_updates};

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) {
        errors.fetch_add(static_cast<uint64_t>(passes) * queries.size());
        return;
      }
      for (int pass = 0; pass < passes; ++pass) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger start offsets so clients do not sweep in lockstep.
          const auto& query = queries[(q + static_cast<size_t>(c)) % queries.size()];
          WallTimer timer;
          auto response = client.Roundtrip("QUERY " + query.sparql);
          histograms[c].Record(timer.ElapsedMicros());
          if (!response.ok() || !response->ok()) errors.fetch_add(1);
        }
      }
      client.Roundtrip("QUIT");
    });
  }
  std::thread updater;
  if (with_updates) {
    updater = std::thread([&] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) return;
      for (int i = 0; i < kMixedUpdates && updating; ++i) {
        auto response = client.Roundtrip("UPDATE 1 0.005");
        if (!response.ok() || !response->ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      client.Roundtrip("QUIT");
    });
  }
  for (auto& t : clients) t.join();
  updating = false;
  if (updater.joinable()) updater.join();
  result.wall_ms = wall.ElapsedMillis();

  for (const auto& h : histograms) result.latency.Merge(h.TakeSnapshot());
  result.requests = result.latency.count;
  result.errors = errors;
  result.throughput_qps =
      result.wall_ms > 0
          ? static_cast<double>(result.requests) / (result.wall_ms / 1000.0)
          : 0.0;
  uint64_t hits = server->metrics().cache_hits() - hits_before;
  uint64_t misses = server->metrics().cache_misses() - misses_before;
  result.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return result;
}

void WriteJson(const std::string& path, const std::vector<PhaseResult>& phases,
               size_t num_queries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"server\",\n");
  std::fprintf(f, "  \"clients\": %d,\n  \"distinct_queries\": %zu,\n",
               kClients, num_queries);
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"requests\": %llu, \"errors\": %llu,\n"
        "     \"wall_ms\": %.1f, \"throughput_qps\": %.1f,\n"
        "     \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"mean_us\": %.1f,\n"
        "     \"cache_hit_rate\": %.4f}%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.errors), p.wall_ms,
        p.throughput_qps, p.latency.P50(), p.latency.P95(), p.latency.P99(),
        p.latency.MeanMicros(), p.cache_hit_rate,
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("S1 | Online serving: closed-loop loopback load, %d clients\n",
              kClients);

  core::SofosEngine engine;
  bench::LoadEngine(&engine, "geopop", datagen::Scale::kDemo);
  core::TripleCountCostModel model;
  auto selection = engine.SelectViews(model, 3);
  if (!selection.ok() || !engine.MaterializeSelection(*selection).ok()) {
    std::fprintf(stderr, "selection/materialization failed\n");
    return 1;
  }

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 16;
  options.seed = 7;
  auto queries = generator.Generate(options);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  server::ServerOptions server_options;
  server_options.max_sessions = kClients + 2;  // clients + updater headroom
  server::SofosServer server(&engine, server_options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<PhaseResult> phases;
  server.ClearCache();
  phases.push_back(RunPhase("cold", &server, *queries, 1, false));
  phases.push_back(RunPhase("warm", &server, *queries, kWarmPasses, false));
  phases.push_back(RunPhase("mixed", &server, *queries, kMixedPasses, true));
  server.Stop();

  TablePrinter table({"phase", "requests", "errors", "wall ms", "qps",
                      "p50 us", "p95 us", "p99 us", "hit rate"});
  for (const PhaseResult& p : phases) {
    table.AddRow({p.name, TablePrinter::Cell(p.requests),
                  TablePrinter::Cell(p.errors),
                  TablePrinter::Cell(p.wall_ms, 1),
                  TablePrinter::Cell(p.throughput_qps, 1),
                  TablePrinter::Cell(p.latency.P50(), 1),
                  TablePrinter::Cell(p.latency.P95(), 1),
                  TablePrinter::Cell(p.latency.P99(), 1),
                  TablePrinter::Cell(p.cache_hit_rate, 3)});
  }
  table.Print();

  if (argc > 1) WriteJson(argv[1], phases, queries->size());

  std::printf(
      "\nReading: warm beats cold by the cache-hit margin (a hit skips\n"
      "parsing, routing, and execution); mixed shows epoch-snapshot\n"
      "serving under concurrent updates — hit rate drops with each epoch\n"
      "bump, correctness never does.\n");
  return phases.back().errors == 0 ? 0 : 1;
}
