/// S1 — online serving under load (event-loop serve path by default;
/// `SOFOS_IO_MODE=thread` re-runs the closed-loop phases on the legacy
/// thread-per-session path). Phases:
///
///   cold   first closed-loop pass over the query set (result cache empty)
///   warm   repeated passes over the same set (cache-hot)
///   mixed  same traffic with a concurrent UPDATE stream (epoch bumps
///          invalidate the cache; queries keep serving on snapshots)
///
/// plus, in event-loop mode:
///
///   open_loop   a fixed-arrival-rate (Poisson) Zipfian mix swept from
///               half capacity to 3x past saturation against a server
///               whose queue-model admission budget is set to the
///               measured closed-loop warm p99. Reports achieved qps,
///               shed rate, admitted-request latency, and schedule-based
///               e2e latency (coordinated-omission-aware) per rate point.
///   idle_connections   4x max_sessions connections parked open while a
///               single client measures warm latency — the tentpole's
///               connections-decoupled-from-threads claim, plus /healthz
///               staying green throughout.
///
/// and a telemetry-overhead A/B: the warm sweep re-run with the whole
/// observability stack off vs. on, alternated for several rounds and
/// compared by per-arm *median* (the round spread is emitted alongside so
/// the regression gate can see the noise floor — a previous best-of
/// comparison produced impossible negative overheads).
///
///   ./bench_server [json_path]
///
/// With `json_path` the results are written as BENCH_server.json (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "common/latency_histogram.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kClients = 4;
constexpr int kWarmPasses = 5;
// Telemetry A/B: each measured arm runs kAbPasses sweeps; the off/on pair
// is alternated kAbRounds times and compared by per-arm median — medians
// of interleaved rounds cancel the slow drift (thermal, frequency) that a
// best-of comparison turns into impossible negative overheads.
constexpr int kAbPasses = 100;
constexpr int kAbRounds = 5;
// Long enough that the concurrent UPDATE batches land (and invalidate the
// cache) inside the measurement window, not after it.
constexpr int kMixedPasses = 30;
constexpr int kMixedUpdates = 4;
// Open-loop sweep: offered rate as a multiple of measured capacity, each
// point driven for a fixed wall budget by a sender pool large enough that
// the client side is never the bottleneck. The pool must also be much
// larger than the server's worker count: each connection carries one
// request in flight, so sender count bounds the queue depth the admission
// model can observe — too few senders and overload shows up only as
// client-side schedule lateness the server cannot shed against.
constexpr double kOpenLoopMultipliers[] = {0.5, 0.8, 1.5, 3.0};
constexpr double kOpenLoopSeconds = 0.4;
constexpr int kOpenLoopSenders = 24;
constexpr double kZipfExponent = 1.0;

struct PhaseResult {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;  // BUSY responses still unserved after client retries
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  LatencyHistogram::Snapshot latency;
  double cache_hit_rate = 0.0;
};

/// Runs one closed-loop phase: every client thread sweeps the query set
/// `passes` times back-to-back; with_updates adds one updater thread
/// issuing small UPDATE batches throughout. Clients honor BUSY pushback
/// via SendWithRetry, so a shed request costs its retry_ms, not an error.
PhaseResult RunPhase(const std::string& name, server::SofosServer* server,
                     const std::vector<core::WorkloadQuery>& queries,
                     int passes, bool with_updates) {
  PhaseResult result;
  result.name = name;

  uint64_t hits_before = server->metrics().cache_hits();
  uint64_t misses_before = server->metrics().cache_misses();

  std::vector<LatencyHistogram> histograms(kClients);
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<bool> updating{with_updates};

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) {
        errors.fetch_add(static_cast<uint64_t>(passes) * queries.size());
        return;
      }
      for (int pass = 0; pass < passes; ++pass) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger start offsets so clients do not sweep in lockstep.
          const auto& query = queries[(q + static_cast<size_t>(c)) % queries.size()];
          WallTimer timer;
          auto response = client.SendWithRetry("QUERY " + query.sparql, 4);
          histograms[c].Record(timer.ElapsedMicros());
          if (!response.ok()) {
            errors.fetch_add(1);
          } else if (response->busy()) {
            shed.fetch_add(1);
          } else if (!response->ok()) {
            errors.fetch_add(1);
          }
        }
      }
      client.Roundtrip("QUIT");
    });
  }
  std::thread updater;
  if (with_updates) {
    updater = std::thread([&] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) return;
      for (int i = 0; i < kMixedUpdates && updating; ++i) {
        auto response = client.Roundtrip("UPDATE 1 0.005");
        if (!response.ok() || !response->ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      client.Roundtrip("QUIT");
    });
  }
  for (auto& t : clients) t.join();
  updating = false;
  if (updater.joinable()) updater.join();
  result.wall_ms = wall.ElapsedMillis();

  for (const auto& h : histograms) result.latency.Merge(h.TakeSnapshot());
  result.requests = result.latency.count;
  result.errors = errors;
  result.shed = shed;
  result.throughput_qps =
      result.wall_ms > 0
          ? static_cast<double>(result.requests) / (result.wall_ms / 1000.0)
          : 0.0;
  uint64_t hits = server->metrics().cache_hits() - hits_before;
  uint64_t misses = server->metrics().cache_misses() - misses_before;
  result.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return result;
}

// ---- Open-loop sweep -------------------------------------------------------

struct OpenLoopPoint {
  std::string name;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  // served (OK) responses per wall second
  double shed_rate = 0.0;     // BUSY / total
  uint64_t requests = 0;
  uint64_t served = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
  LatencyHistogram::Snapshot admitted;  // send -> response, OK only
  LatencyHistogram::Snapshot e2e;       // *scheduled* arrival -> response:
                                        // includes sender lateness, so
                                        // coordinated omission cannot hide
                                        // saturation
};

/// Drives `offered_qps` of Zipf-mixed QUERY traffic at Poisson arrivals
/// for ~`kOpenLoopSeconds` against `server`, without retries: a BUSY is
/// counted as shed and the next arrival proceeds on schedule. Open loop —
/// the arrival schedule is fixed up front and does not slow down when the
/// server does.
OpenLoopPoint RunOpenLoop(const std::string& name,
                          server::SofosServer* server,
                          const std::vector<core::WorkloadQuery>& queries,
                          double offered_qps, uint64_t seed) {
  OpenLoopPoint point;
  point.name = name;
  point.offered_qps = offered_qps;
  if (offered_qps <= 0.0 || queries.empty()) return point;

  // Precompute the whole schedule: Poisson arrival offsets (micros from
  // phase start) and a Zipf-distributed query index per arrival.
  Rng rng(seed);
  ZipfSampler zipf(queries.size(), kZipfExponent);
  std::vector<double> arrival_micros;
  std::vector<uint32_t> query_index;
  const double mean_gap = 1e6 / offered_qps;
  double t = 0.0;
  while (t < kOpenLoopSeconds * 1e6) {
    t += -std::log(1.0 - rng.UniformDouble()) * mean_gap;
    arrival_micros.push_back(t);
    query_index.push_back(static_cast<uint32_t>(zipf.Sample(&rng)));
  }

  std::vector<LatencyHistogram> admitted(kOpenLoopSenders);
  std::vector<LatencyHistogram> e2e(kOpenLoopSenders);
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> served{0}, shed{0}, errors{0};

  WallTimer wall;
  std::vector<std::thread> senders;
  for (int s = 0; s < kOpenLoopSenders; ++s) {
    senders.emplace_back([&, s] {
      server::BlockingClient client;
      if (!client.Connect(server->port()).ok()) return;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= arrival_micros.size()) break;
        // Sleep until the scheduled arrival, re-checking on wake. Plain
        // sleeps only: a busy yield-wait for sub-millisecond gaps would
        // steal the very CPU the server needs to drain its queue, and the
        // schedule-based e2e metric already accounts for any oversleep.
        for (;;) {
          const double now = wall.ElapsedMicros();
          const double remaining = arrival_micros[i] - now;
          if (remaining <= 0.0) break;
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<long>(remaining)));
        }
        if (!client.connected() && !client.Connect(server->port()).ok()) {
          errors.fetch_add(1);
          continue;
        }
        WallTimer send_timer;
        auto response =
            client.Roundtrip("QUERY " + queries[query_index[i]].sparql);
        const double finished = wall.ElapsedMicros();
        if (!response.ok()) {
          errors.fetch_add(1);
          client.Close();  // transport fault: reconnect on the next arrival
        } else if (response->busy()) {
          shed.fetch_add(1);
        } else if (response->ok()) {
          served.fetch_add(1);
          admitted[s].Record(send_timer.ElapsedMicros());
          e2e[s].Record(finished - arrival_micros[i]);
        } else {
          errors.fetch_add(1);
        }
      }
      client.Roundtrip("QUIT");
    });
  }
  for (auto& sender : senders) sender.join();
  point.wall_ms = wall.ElapsedMillis();

  point.requests = arrival_micros.size();
  point.served = served;
  point.shed = shed;
  point.errors = errors;
  point.achieved_qps =
      point.wall_ms > 0
          ? static_cast<double>(point.served) / (point.wall_ms / 1000.0)
          : 0.0;
  point.shed_rate =
      point.requests > 0
          ? static_cast<double>(point.shed) / static_cast<double>(point.requests)
          : 0.0;
  for (const auto& h : admitted) point.admitted.Merge(h.TakeSnapshot());
  for (const auto& h : e2e) point.e2e.Merge(h.TakeSnapshot());
  return point;
}

// ---- Idle-connection capacity ----------------------------------------------

struct IdleConnResult {
  int connections = 0;          // idle connections held open
  double baseline_p50_us = 0.0;  // warm QUERY latency, no idle load
  double with_idle_p50_us = 0.0;
  bool healthz_ok = false;
};

LatencyHistogram::Snapshot MeasureWarmLatency(
    server::SofosServer* server,
    const std::vector<core::WorkloadQuery>& queries, int passes) {
  LatencyHistogram histogram;
  server::BlockingClient client;
  if (!client.Connect(server->port()).ok()) return histogram.TakeSnapshot();
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto& query : queries) {
      WallTimer timer;
      auto response = client.Roundtrip("QUERY " + query.sparql);
      if (response.ok() && response->ok()) {
        histogram.Record(timer.ElapsedMicros());
      }
    }
  }
  client.Roundtrip("QUIT");
  return histogram.TakeSnapshot();
}

std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---- JSON ------------------------------------------------------------------

struct AbResult {
  double median_qps_off = 0.0;
  double median_qps_on = 0.0;
  double spread_pct_off = 0.0;  // (max-min)/median per arm — noise floor
  double spread_pct_on = 0.0;
  double overhead_pct = 0.0;
};

void WriteJson(const std::string& path, const std::string& io_mode,
               const std::vector<PhaseResult>& phases, size_t num_queries,
               const AbResult& ab, const std::vector<OpenLoopPoint>& open_loop,
               double capacity_qps, double warm_p99_us, double slo_budget_us,
               const IdleConnResult& idle) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"server\",\n");
  std::fprintf(f, "  \"io_mode\": \"%s\",\n", io_mode.c_str());
  std::fprintf(f, "  \"clients\": %d,\n  \"distinct_queries\": %zu,\n",
               kClients, num_queries);
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"requests\": %llu, \"errors\": %llu,\n"
        "     \"wall_ms\": %.1f, \"throughput_qps\": %.1f,\n"
        "     \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"mean_us\": %.1f,\n"
        "     \"cache_hit_rate\": %.4f}%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.errors), p.wall_ms,
        p.throughput_qps, p.latency.P50(), p.latency.P95(), p.latency.P99(),
        p.latency.MeanMicros(), p.cache_hit_rate,
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"telemetry_ab\": {\"rounds\": %d, "
               "\"median_qps_off\": %.1f, \"median_qps_on\": %.1f,\n"
               "    \"qps_spread_pct_off\": %.1f, \"qps_spread_pct_on\": "
               "%.1f},\n",
               kAbRounds, ab.median_qps_off, ab.median_qps_on,
               ab.spread_pct_off, ab.spread_pct_on);
  std::fprintf(f, "  \"telemetry_overhead_pct\": %.2f,\n", ab.overhead_pct);
  if (!open_loop.empty()) {
    std::fprintf(f,
                 "  \"open_loop\": {\"capacity_qps\": %.1f, "
                 "\"closed_loop_warm_p99_us\": %.1f, "
                 "\"slo_budget_us\": %.1f,\n    \"points\": [\n",
                 capacity_qps, warm_p99_us, slo_budget_us);
    for (size_t i = 0; i < open_loop.size(); ++i) {
      const OpenLoopPoint& p = open_loop[i];
      std::fprintf(
          f,
          "      {\"name\": \"%s\", \"offered_qps\": %.1f, "
          "\"achieved_qps\": %.1f, \"shed_rate\": %.4f,\n"
          "       \"requests\": %llu, \"errors\": %llu,\n"
          "       \"admitted_p50_us\": %.1f, \"admitted_p99_us\": %.1f,\n"
          "       \"e2e_p50_us\": %.1f, \"e2e_p99_us\": %.1f}%s\n",
          p.name.c_str(), p.offered_qps, p.achieved_qps, p.shed_rate,
          static_cast<unsigned long long>(p.requests),
          static_cast<unsigned long long>(p.errors), p.admitted.P50(),
          p.admitted.P99(), p.e2e.P50(), p.e2e.P99(),
          i + 1 < open_loop.size() ? "," : "");
    }
    std::fprintf(f, "    ]},\n");
  }
  if (idle.connections > 0) {
    std::fprintf(f,
                 "  \"idle_connections\": {\"connections\": %d, "
                 "\"baseline_p50_us\": %.1f, \"with_idle_p50_us\": %.1f, "
                 "\"healthz_ok\": %d},\n",
                 idle.connections, idle.baseline_p50_us, idle.with_idle_p50_us,
                 idle.healthz_ok ? 1 : 0);
  }
  std::fprintf(f, "  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const server::IoMode io_mode =
      server::IoModeFromEnv(server::IoMode::kEventLoop);
  const std::string io_mode_name = io_mode == server::IoMode::kEventLoop
                                       ? "event_loop"
                                       : "thread_per_session";
  std::printf("S1 | Online serving: %s io, closed-loop %d clients\n",
              io_mode_name.c_str(), kClients);

  core::SofosEngine engine;
  bench::LoadEngine(&engine, "geopop", datagen::Scale::kDemo);
  core::TripleCountCostModel model;
  auto selection = engine.SelectViews(model, 3);
  if (!selection.ok() || !engine.MaterializeSelection(*selection).ok()) {
    std::fprintf(stderr, "selection/materialization failed\n");
    return 1;
  }

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 16;
  options.seed = 7;
  auto queries = generator.Generate(options);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  server::ServerOptions server_options;
  server_options.io_mode = io_mode;
  server_options.max_sessions = kClients + 2;  // clients + updater headroom
  server::SofosServer server(&engine, server_options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<PhaseResult> phases;
  server.ClearCache();
  phases.push_back(RunPhase("cold", &server, *queries, 1, false));
  phases.push_back(RunPhase("warm", &server, *queries, kWarmPasses, false));
  phases.push_back(RunPhase("mixed", &server, *queries, kMixedPasses, true));
  server.Stop();

  // Telemetry A/B: the warm sweep on a fresh server with the full
  // observability stack off, then on (sampler at 4 Hz — 4x the serving
  // default — plus recorder and HTTP listener). Each arm warms its own
  // cache with one untimed pass first.
  auto run_telemetry_phase = [&](const std::string& name,
                                 bool telemetry_on) -> PhaseResult {
    server::ServerOptions ab_options;
    ab_options.io_mode = io_mode;
    ab_options.max_sessions = kClients + 2;
    ab_options.enable_telemetry = telemetry_on;
    ab_options.sample_period_seconds = 0.25;
    ab_options.enable_http = telemetry_on;
    engine.recorder()->Enable(telemetry_on);
    server::SofosServer ab_server(&engine, ab_options);
    if (!ab_server.Start().ok()) {
      std::fprintf(stderr, "telemetry A/B server start failed\n");
      return PhaseResult{};
    }
    RunPhase("warmup", &ab_server, *queries, 1, false);
    PhaseResult result =
        RunPhase(name, &ab_server, *queries, kAbPasses, false);
    ab_server.Stop();
    return result;
  };
  // A single warm sweep finishes in ~10ms on this container — far too
  // short to resolve a few-percent qps delta — and back-to-back arms see
  // ±10% run-order noise (scheduling, frequency drift). Interleave the
  // arms for kAbRounds rounds and compare per-arm *medians*: unlike
  // best-of (which once reported an impossible -8% overhead by pairing
  // one arm's lucky round against the other's typical one), the median
  // is drift-robust, and the emitted round spread tells the regression
  // gate how much noise the figure carries.
  std::vector<PhaseResult> rounds_off, rounds_on;
  for (int round = 0; round < kAbRounds; ++round) {
    rounds_off.push_back(run_telemetry_phase("warm_no_telemetry", false));
    rounds_on.push_back(run_telemetry_phase("warm_telemetry", true));
  }
  engine.recorder()->Enable(true);
  auto by_qps = [](const PhaseResult& a, const PhaseResult& b) {
    return a.throughput_qps < b.throughput_qps;
  };
  std::sort(rounds_off.begin(), rounds_off.end(), by_qps);
  std::sort(rounds_on.begin(), rounds_on.end(), by_qps);
  const PhaseResult& median_off = rounds_off[rounds_off.size() / 2];
  const PhaseResult& median_on = rounds_on[rounds_on.size() / 2];
  phases.push_back(median_off);
  phases.push_back(median_on);
  AbResult ab;
  ab.median_qps_off = median_off.throughput_qps;
  ab.median_qps_on = median_on.throughput_qps;
  auto spread_pct = [](const std::vector<PhaseResult>& rounds) {
    const double median = rounds[rounds.size() / 2].throughput_qps;
    return median > 0 ? (rounds.back().throughput_qps -
                         rounds.front().throughput_qps) /
                            median * 100.0
                      : 0.0;
  };
  ab.spread_pct_off = spread_pct(rounds_off);
  ab.spread_pct_on = spread_pct(rounds_on);
  ab.overhead_pct =
      ab.median_qps_off > 0
          ? (1.0 - ab.median_qps_on / ab.median_qps_off) * 100.0
          : 0.0;

  // Open-loop overload sweep + idle-connection phase: event-loop mode
  // only — thread-per-session rejects connections past the session pool
  // (no idle parking) and has no per-request admission to exercise.
  std::vector<OpenLoopPoint> open_loop;
  IdleConnResult idle;
  double ol_capacity_qps = 0.0;
  double ol_warm_p99_us = 0.0;
  double slo_budget_us = 0.0;
  if (io_mode == server::IoMode::kEventLoop) {
    // The overload sweep runs with the result cache off. Cached answers
    // take tens of microseconds of handler time, so under overload the
    // latency accrues in the IO path while the queue model — which
    // describes the worker pool — sees a nearly idle system and never
    // sheds. Uncached, the pool is the genuine bottleneck and the M/M/c
    // estimate tracks what clients actually experience.
    server::ServerOptions ol_options;
    ol_options.io_mode = io_mode;
    // The queue model's `c` is the worker-pool size: cap the pool at the
    // machine's parallelism so the modelled aggregate service rate c/S is
    // one the hardware can actually deliver. With more workers than
    // cores, (q+1)*S/c systematically underestimates the real wait and
    // admission sheds far too late.
    ol_options.max_sessions = std::min<unsigned>(
        kClients + 2, std::max(1u, std::thread::hardware_concurrency()));
    // One loop thread: the sweep measures admission quality, and every
    // extra thread contending for the cores inflates the real per-request
    // drain time above the handler-only S the model estimates from.
    ol_options.io_threads = 1;
    ol_options.enable_cache = false;

    // Like-for-like baseline on the same configuration: closed-loop
    // capacity and warm p99 measured uncached, against which the offered
    // multipliers and the admitted-latency bound below are defined.
    {
      server::SofosServer baseline_server(&engine, ol_options);
      if (baseline_server.Start().ok()) {
        RunPhase("ol_baseline_warmup", &baseline_server, *queries, 1, false);
        // 3x the warm pass count: the p99 of this phase sets the offered
        // rates and the admission budget for the whole sweep, so it needs
        // a stabler tail estimate than a display-only phase.
        PhaseResult baseline = RunPhase("open_loop_closed_baseline",
                                        &baseline_server, *queries,
                                        3 * kWarmPasses, false);
        ol_capacity_qps = baseline.throughput_qps;
        ol_warm_p99_us = baseline.latency.P99();
        phases.push_back(baseline);
        baseline_server.Stop();
      }
    }

    // Admission budget tied to the closed-loop warm p99 on this very
    // configuration: ~30% of a round trip of queueing budget, leaving
    // the rest for the request's own (heavy-tailed) service time — total
    // admitted latency then stays within ~2x the closed-loop figure
    // while everything beyond capacity sheds. (The model's estimate
    // bounds the *mean* wait; the admitted tail runs a couple of
    // mean-cutoffs above it, which the reduced budget absorbs.)
    slo_budget_us = std::max(200.0, 0.3 * ol_warm_p99_us);
    ol_options.admission.slo_budget_micros = slo_budget_us;
    server::SofosServer ol_server(&engine, ol_options);
    if (ol_server.Start().ok() && ol_capacity_qps > 0.0) {
      uint64_t seed = 1234;
      for (double multiplier : kOpenLoopMultipliers) {
        // Let the previous point's queue drain and its sender threads
        // exit before the next schedule starts, so points don't
        // contaminate each other's latency tails.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        char name[32];
        std::snprintf(name, sizeof(name), "%.1fx", multiplier);
        open_loop.push_back(RunOpenLoop(name, &ol_server, *queries,
                                        multiplier * ol_capacity_qps, seed++));
      }
      ol_server.Stop();
    } else {
      std::fprintf(stderr, "open-loop server start failed\n");
    }

    // Idle connections: park 4x max_sessions sockets, then show a live
    // client's warm latency and /healthz unmoved.
    server::ServerOptions idle_options;
    idle_options.io_mode = io_mode;
    server::SofosServer idle_server(&engine, idle_options);
    if (idle_server.Start().ok()) {
      MeasureWarmLatency(&idle_server, *queries, 1);  // warm the cache
      idle.baseline_p50_us =
          MeasureWarmLatency(&idle_server, *queries, 3).P50();
      idle.connections = static_cast<int>(4 * idle_options.max_sessions);
      std::vector<std::unique_ptr<server::BlockingClient>> parked;
      for (int i = 0; i < idle.connections; ++i) {
        auto client = std::make_unique<server::BlockingClient>();
        if (client->Connect(idle_server.port()).ok()) {
          parked.push_back(std::move(client));
        }
      }
      idle.with_idle_p50_us =
          MeasureWarmLatency(&idle_server, *queries, 3).P50();
      idle.healthz_ok =
          HttpGet(idle_server.http_port(), "/healthz").find("HTTP/1.0 200") !=
          std::string::npos;
      parked.clear();
      idle_server.Stop();
    } else {
      std::fprintf(stderr, "idle-connection server start failed\n");
    }
  }

  TablePrinter table({"phase", "requests", "errors", "wall ms", "qps",
                      "p50 us", "p95 us", "p99 us", "hit rate"});
  for (const PhaseResult& p : phases) {
    table.AddRow({p.name, TablePrinter::Cell(p.requests),
                  TablePrinter::Cell(p.errors),
                  TablePrinter::Cell(p.wall_ms, 1),
                  TablePrinter::Cell(p.throughput_qps, 1),
                  TablePrinter::Cell(p.latency.P50(), 1),
                  TablePrinter::Cell(p.latency.P95(), 1),
                  TablePrinter::Cell(p.latency.P99(), 1),
                  TablePrinter::Cell(p.cache_hit_rate, 3)});
  }
  table.Print();
  std::printf(
      "telemetry overhead: %.2f%% of warm qps "
      "(medians of %d rounds; spread off %.1f%% / on %.1f%%)\n",
      ab.overhead_pct, kAbRounds, ab.spread_pct_off, ab.spread_pct_on);

  if (!open_loop.empty()) {
    TablePrinter ol_table({"offered", "offered qps", "achieved qps",
                           "shed rate", "adm p50 us", "adm p99 us",
                           "e2e p99 us", "errors"});
    for (const OpenLoopPoint& p : open_loop) {
      ol_table.AddRow({p.name, TablePrinter::Cell(p.offered_qps, 1),
                       TablePrinter::Cell(p.achieved_qps, 1),
                       TablePrinter::Cell(p.shed_rate, 3),
                       TablePrinter::Cell(p.admitted.P50(), 1),
                       TablePrinter::Cell(p.admitted.P99(), 1),
                       TablePrinter::Cell(p.e2e.P99(), 1),
                       TablePrinter::Cell(p.errors)});
    }
    ol_table.Print();
    std::printf(
        "open loop: capacity %.1f qps (uncached), closed-loop p99 %.1f us, "
        "SLO budget %.1f us\n",
        ol_capacity_qps, ol_warm_p99_us, slo_budget_us);
  }
  if (idle.connections > 0) {
    std::printf(
        "idle connections: %d parked, warm p50 %.1f -> %.1f us, healthz %s\n",
        idle.connections, idle.baseline_p50_us, idle.with_idle_p50_us,
        idle.healthz_ok ? "ok" : "FAILED");
  }

  if (argc > 1) {
    WriteJson(argv[1], io_mode_name, phases, queries->size(), ab, open_loop,
              ol_capacity_qps, ol_warm_p99_us, slo_budget_us, idle);
  }

  std::printf(
      "\nReading: warm beats cold by the cache-hit margin; mixed shows\n"
      "epoch-snapshot serving under concurrent updates. The open-loop\n"
      "sweep drives fixed arrival rates past saturation: achieved qps\n"
      "plateaus at capacity while the queue-model admission sheds the\n"
      "excess, keeping admitted-request latency near the closed-loop\n"
      "figure instead of letting queues grow without bound.\n");
  return phases.back().errors == 0 ? 0 : 1;
}
