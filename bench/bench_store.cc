/// S1 — sharded copy-on-write TripleStore, per dataset and shard count:
///
///   Finalize()    full rebuild cost at 1/2/4/8 shards (pool-parallel
///                 per-shard sorts)
///   ApplyDelta()  0.5% staged-delta merge cost + how many of the
///                 3 * shard_count buckets it actually rebuilt
///   Clone()       COW snapshot clone vs the pre-COW DeepClone() baseline
///   publish       SofosEngine::PublishSnapshot() after a 0.5%
///                 ApplyUpdates batch vs the same publish paying a deep
///                 clone — the O(changed shards) headline number
///
///   ./bench_store [json_path]
///
/// With `json_path` the results are written as BENCH_store.json (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kRepetitions = 5;
constexpr double kBatchFraction = 0.005;  // "small delta": 0.5% of |G|
const size_t kShardCounts[] = {1, 2, 4, 8};

struct ShardResult {
  size_t shard_count = 0;
  double finalize_ms = 0.0;
  double apply_delta_ms = 0.0;
  uint64_t shards_rebuilt = 0;
  double cow_clone_us = 0.0;
  double deep_clone_us = 0.0;
  double publish_us = 0.0;

  double CloneSpeedup() const {
    return cow_clone_us > 0 ? deep_clone_us / cow_clone_us : 0.0;
  }
  /// Publish vs the same publish paying a deep clone instead of the COW
  /// pointer copies (the pre-shard baseline).
  double PublishSpeedup() const {
    double baseline = publish_us - cow_clone_us + deep_clone_us;
    return publish_us > 0 ? baseline / publish_us : 0.0;
  }
};

struct DatasetResult {
  std::string name;
  uint64_t base_triples = 0;
  uint64_t delta_ops = 0;
  std::vector<ShardResult> shards;
};

bool MeasureDataset(const std::string& dataset, ThreadPool* pool,
                    DatasetResult* out) {
  for (size_t shard_count : kShardCounts) {
    ShardResult r;
    r.shard_count = shard_count;

    // ---- Store level: Finalize / ApplyDelta / Clone -----------------
    TripleStore store;
    store.SetShardCount(shard_count);
    auto spec =
        datagen::GenerateByName(dataset, datagen::Scale::kDemo, 42, &store);
    if (!spec.ok()) return false;
    out->base_triples = store.NumTriples();

    workload::UpdateStreamOptions options;
    options.num_batches = 1;
    options.batch_fraction = kBatchFraction;
    options.seed = 21;
    auto stream = workload::GenerateUpdateStream(store.triples(),
                                                 store.dictionary(), options);
    if (!stream.ok() || stream->empty()) return false;
    std::vector<Triple> adds, deletes;
    for (const auto& t : (*stream)[0].adds) {
      adds.push_back(
          Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
    }
    for (const auto& t : (*stream)[0].deletes) {
      deletes.push_back(
          Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
    }
    out->delta_ops = adds.size() + deletes.size();

    std::vector<double> finalize_runs, merge_runs, cow_runs, deep_runs;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      std::vector<Triple> content = store.triples();
      store.ReplaceTriples(std::move(content));
      WallTimer finalize_timer;
      store.Finalize(pool);
      finalize_runs.push_back(finalize_timer.ElapsedMillis());

      for (const Triple& t : adds) store.StageAdd(t.s, t.p, t.o);
      for (const Triple& t : deletes) store.StageDelete(t.s, t.p, t.o);
      WallTimer merge_timer;
      DeltaApplyResult merged = store.ApplyDelta(pool);
      merge_runs.push_back(merge_timer.ElapsedMillis());
      r.shards_rebuilt = merged.shards_rebuilt;

      WallTimer cow_timer;
      TripleStore cow = store.Clone();
      cow_runs.push_back(cow_timer.ElapsedMicros());
      WallTimer deep_timer;
      TripleStore deep = store.DeepClone();
      deep_runs.push_back(deep_timer.ElapsedMicros());
      if (cow.NumTriples() != deep.NumTriples()) return false;

      // Invert the delta so every repetition starts from the same state.
      for (const Triple& t : deletes) store.StageAdd(t.s, t.p, t.o);
      for (const Triple& t : adds) store.StageDelete(t.s, t.p, t.o);
      store.ApplyDelta(pool);
    }
    r.finalize_ms = bench::Median(finalize_runs);
    r.apply_delta_ms = bench::Median(merge_runs);
    r.cow_clone_us = bench::Median(cow_runs);
    r.deep_clone_us = bench::Median(deep_runs);

    // ---- Engine level: PublishSnapshot after a 0.5% update batch ----
    core::SofosEngine engine;
    engine.SetShardCount(static_cast<unsigned>(shard_count));
    bench::LoadEngine(&engine, dataset, datagen::Scale::kDemo);
    core::TripleCountCostModel model;
    auto selection = engine.SelectViews(model, 3);
    if (!selection.ok()) return false;
    if (!engine.MaterializeSelection(*selection).ok()) return false;
    if (!engine.PublishSnapshot().ok()) return false;

    workload::UpdateStreamOptions engine_options;
    engine_options.num_batches = kRepetitions;
    engine_options.batch_fraction = kBatchFraction;
    engine_options.seed = 23;
    auto engine_stream = workload::GenerateUpdateStream(
        engine.base_snapshot(), engine.store()->dictionary(), engine_options);
    if (!engine_stream.ok()) return false;
    std::vector<double> publish_runs;
    for (const auto& delta : *engine_stream) {
      if (!engine.ApplyUpdates(delta).ok()) return false;
      WallTimer publish_timer;
      if (!engine.PublishSnapshot().ok()) return false;
      publish_runs.push_back(publish_timer.ElapsedMicros());
    }
    r.publish_us = bench::Median(publish_runs);

    out->shards.push_back(r);
  }
  return true;
}

void WriteJson(const std::string& path,
               const std::vector<DatasetResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"store\",\n");
  std::fprintf(f, "  \"batch_fraction\": %.4f,\n  \"repetitions\": %d,\n",
               kBatchFraction, kRepetitions);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const DatasetResult& d = results[i];
    std::fprintf(
        f, "    {\"name\": \"%s\", \"base_triples\": %llu, \"delta_ops\": %llu,\n"
           "     \"shards\": [\n",
        d.name.c_str(), static_cast<unsigned long long>(d.base_triples),
        static_cast<unsigned long long>(d.delta_ops));
    for (size_t j = 0; j < d.shards.size(); ++j) {
      const ShardResult& r = d.shards[j];
      std::fprintf(
          f,
          "      {\"shard_count\": %zu, \"finalize_ms\": %.3f, "
          "\"apply_delta_ms\": %.3f, \"shards_rebuilt\": %llu,\n"
          "       \"cow_clone_us\": %.1f, \"deep_clone_us\": %.1f, "
          "\"clone_speedup\": %.1f, \"publish_us\": %.1f, "
          "\"publish_speedup\": %.1f}%s\n",
          r.shard_count, r.finalize_ms, r.apply_delta_ms,
          static_cast<unsigned long long>(r.shards_rebuilt), r.cow_clone_us,
          r.deep_clone_us, r.CloneSpeedup(), r.publish_us, r.PublishSpeedup(),
          j + 1 < d.shards.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "S1 | Sharded COW TripleStore: rebuild / delta merge / snapshot "
      "clone (%.1f%% deltas)\n",
      kBatchFraction * 100.0);

  ThreadPool pool(4);
  std::vector<DatasetResult> results;
  TablePrinter table({"dataset", "shards", "finalize ms", "delta ms",
                      "rebuilt", "cow us", "deep us", "clone x", "publish us",
                      "publish x"});
  for (const std::string& name : datagen::DatasetNames()) {
    DatasetResult result;
    result.name = name;
    if (!MeasureDataset(name, &pool, &result)) {
      std::fprintf(stderr, "dataset %s failed\n", name.c_str());
      return 1;
    }
    for (const ShardResult& r : result.shards) {
      table.AddRow({result.name, TablePrinter::Cell(uint64_t{r.shard_count}),
                    TablePrinter::Cell(r.finalize_ms, 2),
                    TablePrinter::Cell(r.apply_delta_ms, 2),
                    TablePrinter::Cell(r.shards_rebuilt),
                    TablePrinter::Cell(r.cow_clone_us, 1),
                    TablePrinter::Cell(r.deep_clone_us, 1),
                    TablePrinter::Cell(r.CloneSpeedup(), 1),
                    TablePrinter::Cell(r.publish_us, 1),
                    TablePrinter::Cell(r.PublishSpeedup(), 1)});
    }
    results.push_back(result);
  }
  table.Print();

  if (argc > 1) WriteJson(argv[1], results);

  std::printf(
      "\nReading: Clone() is O(shard pointers) regardless of |G| — the COW\n"
      "column stays flat while DeepClone grows with the graph, so epoch\n"
      "publication after a small ApplyUpdates batch no longer pays O(n).\n"
      "ApplyDelta rebuilds only the buckets the delta hashes into\n"
      "(`rebuilt` of 3 * shard_count).\n");
  return 0;
}
