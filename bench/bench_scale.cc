/// SC1 — million-triple scale: generation throughput, storage footprint,
/// and query latency of the compact adjacency layout, per scale point:
///
///   gen          parameterized LUBM generation + Finalize at the target
///                triple count (8 shards, pool-parallel)
///   bytes/triple sorted-run baseline vs compact CSR + front-coded
///                dictionary, and the relative cut
///   queries      Q1 (star lookup), Q2 (3-way join), Q3 (group-by over a
///                full predicate) — p50/p95 on both layouts, results
///                asserted byte-identical before any number is reported
///   delta        0.2% staged-delta ApplyDelta on the compact layout, plus
///                the COW Clone() publish proxy
///
///   ./bench_scale [json_path]
///
/// Default scale points are 100k / 300k / 1m triples; set SOFOS_SCALE_BIG=1
/// to append a 10m point (minutes, not seconds). With `json_path` the
/// results are written as BENCH_scale.json (consumed by
/// scripts/run_benches.sh).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/lubm.h"
#include "sparql/query_engine.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr size_t kShardCount = 8;
constexpr int kQueryReps = 9;
constexpr double kDeltaFraction = 0.002;  // 0.2% of |G|

struct QueryCase {
  const char* name;
  std::string sparql;
};

std::vector<QueryCase> ScaleQueries() {
  const std::string ns = datagen::kLubmNs;
  return {
      // Star lookup on one department: subject-family scans with a bound
      // predicate — the path the per-shard predicate blooms accelerate.
      {"q1_star",
       "PREFIX lubm: <" + ns + ">\n"
       "SELECT ?c ?lvl WHERE {\n"
       "  ?c lubm:offeredBy <" + ns + "dept/U0D0> .\n"
       "  ?c lubm:courseLevel ?lvl .\n"
       "}"},
      // Three-way join anchored on one university: exercises CSR node
      // lookups and the planner's fanout-compounding width hint.
      {"q2_join",
       "PREFIX lubm: <" + ns + ">\n"
       "SELECT ?student WHERE {\n"
       "  ?dept lubm:subOrganizationOf <" + ns + "univ/U0> .\n"
       "  ?course lubm:offeredBy ?dept .\n"
       "  ?student lubm:takesCourse ?course .\n"
       "}"},
      // Full group-by over one predicate: streams a whole predicate-family
      // shard set through the hash aggregator.
      {"q3_agg",
       "PREFIX lubm: <" + ns + ">\n"
       "SELECT ?lvl (COUNT(?c) AS ?n) WHERE {\n"
       "  ?c lubm:courseLevel ?lvl .\n"
       "} GROUP BY ?lvl"},
  };
}

/// Canonical rendering of a result set, independent of execution order —
/// the byte-identity oracle between layouts.
std::string RenderCanonical(sparql::QueryResult result) {
  result.SortCanonical();
  std::string out;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      out += result.bound[r][c] ? result.rows[r][c].ToNTriples() : "<unbound>";
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct QueryNumbers {
  const char* name = "";
  uint64_t rows = 0;
  double legacy_p50_us = 0.0, legacy_p95_us = 0.0;
  double compact_p50_us = 0.0, compact_p95_us = 0.0;
};

struct PointResult {
  std::string target;
  uint64_t triples = 0;
  double gen_seconds = 0.0;
  double layout_seconds = 0.0;
  double legacy_bpt = 0.0;
  double compact_bpt = 0.0;
  bool results_identical = true;
  std::vector<QueryNumbers> queries;
  uint64_t delta_ops = 0;
  double delta_apply_ms = 0.0;
  double cow_clone_us = 0.0;

  double CutPct() const {
    return legacy_bpt > 0 ? 100.0 * (1.0 - compact_bpt / legacy_bpt) : 0.0;
  }
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

/// Runs every query `kQueryReps` times against `store`, recording latency
/// samples and the canonical result rendering.
bool TimeQueries(TripleStore* store, const std::vector<QueryCase>& cases,
                 std::vector<std::vector<double>>* samples,
                 std::vector<std::string>* renderings,
                 std::vector<uint64_t>* row_counts) {
  sparql::QueryEngine qe(store);
  samples->assign(cases.size(), {});
  renderings->assign(cases.size(), "");
  row_counts->assign(cases.size(), 0);
  for (size_t q = 0; q < cases.size(); ++q) {
    for (int rep = 0; rep < kQueryReps; ++rep) {
      WallTimer timer;
      auto result = qe.Execute(cases[q].sparql);
      double micros = timer.ElapsedMicros();
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", cases[q].name,
                     result.status().ToString().c_str());
        return false;
      }
      (*samples)[q].push_back(micros);
      if (rep == 0) {
        (*row_counts)[q] = result->NumRows();
        (*renderings)[q] = RenderCanonical(std::move(result).value());
      }
    }
  }
  return true;
}

bool MeasurePoint(const std::string& target, ThreadPool* pool,
                  PointResult* out) {
  out->target = target;

  auto spec = datagen::ParseScaleSpec(target);
  if (!spec.ok()) return false;

  TripleStore store;
  store.SetShardCount(kShardCount);
  WallTimer gen_timer;
  auto dataset = datagen::GenerateByName("lubm", spec.value(), 42, &store);
  out->gen_seconds = gen_timer.ElapsedSeconds();
  if (!dataset.ok()) return false;
  out->triples = store.NumTriples();
  out->legacy_bpt =
      static_cast<double>(store.MemoryBytes()) / static_cast<double>(out->triples);

  const std::vector<QueryCase> cases = ScaleQueries();
  std::vector<std::vector<double>> legacy_samples, compact_samples;
  std::vector<std::string> legacy_render, compact_render;
  std::vector<uint64_t> legacy_rows, compact_rows;
  if (!TimeQueries(&store, cases, &legacy_samples, &legacy_render,
                   &legacy_rows)) {
    return false;
  }

  WallTimer layout_timer;
  store.SetCompactLayout(true, pool);
  store.mutable_dictionary()->SetFrontCoding(true);
  out->layout_seconds = layout_timer.ElapsedSeconds();
  out->compact_bpt =
      static_cast<double>(store.MemoryBytes()) / static_cast<double>(out->triples);

  if (!TimeQueries(&store, cases, &compact_samples, &compact_render,
                   &compact_rows)) {
    return false;
  }
  for (size_t q = 0; q < cases.size(); ++q) {
    if (legacy_render[q] != compact_render[q]) {
      std::fprintf(stderr, "%s %s: layouts disagree (%llu vs %llu rows)\n",
                   target.c_str(), cases[q].name,
                   static_cast<unsigned long long>(legacy_rows[q]),
                   static_cast<unsigned long long>(compact_rows[q]));
      out->results_identical = false;
    }
    QueryNumbers numbers;
    numbers.name = cases[q].name;
    numbers.rows = legacy_rows[q];
    numbers.legacy_p50_us = Percentile(legacy_samples[q], 0.5);
    numbers.legacy_p95_us = Percentile(legacy_samples[q], 0.95);
    numbers.compact_p50_us = Percentile(compact_samples[q], 0.5);
    numbers.compact_p95_us = Percentile(compact_samples[q], 0.95);
    out->queries.push_back(numbers);
  }
  if (!out->results_identical) return false;

  // Delta maintenance on the compact layout: a 0.2% batch, applied and
  // inverted so the store ends where it started.
  workload::UpdateStreamOptions options;
  options.num_batches = 1;
  options.batch_fraction = kDeltaFraction;
  options.seed = 21;
  auto stream = workload::GenerateUpdateStream(store.triples(),
                                               store.dictionary(), options);
  if (!stream.ok() || stream->empty()) return false;
  std::vector<Triple> adds, deletes;
  for (const auto& t : (*stream)[0].adds) {
    adds.push_back(
        Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
  }
  for (const auto& t : (*stream)[0].deletes) {
    deletes.push_back(
        Triple{store.Intern(t.s), store.Intern(t.p), store.Intern(t.o)});
  }
  out->delta_ops = adds.size() + deletes.size();

  for (const Triple& t : adds) store.StageAdd(t.s, t.p, t.o);
  for (const Triple& t : deletes) store.StageDelete(t.s, t.p, t.o);
  WallTimer merge_timer;
  store.ApplyDelta(pool);
  out->delta_apply_ms = merge_timer.ElapsedMillis();

  WallTimer clone_timer;
  TripleStore snapshot = store.Clone();
  out->cow_clone_us = clone_timer.ElapsedMicros();
  if (snapshot.NumTriples() != store.NumTriples()) return false;

  for (const Triple& t : deletes) store.StageAdd(t.s, t.p, t.o);
  for (const Triple& t : adds) store.StageDelete(t.s, t.p, t.o);
  store.ApplyDelta(pool);
  return true;
}

void WriteJson(const std::string& path, const std::vector<PointResult>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n");
  std::fprintf(f, "  \"dataset\": \"lubm\",\n  \"shard_count\": %zu,\n",
               kShardCount);
  std::fprintf(f, "  \"query_reps\": %d,\n  \"points\": [\n", kQueryReps);
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(
        f,
        "    {\"target\": \"%s\", \"triples\": %llu, \"gen_seconds\": %.3f, "
        "\"load_seconds\": %.3f,\n"
        "     \"legacy_bytes_per_triple\": %.1f, "
        "\"compact_bytes_per_triple\": %.1f, \"bytes_cut_pct\": %.1f,\n"
        "     \"results_identical\": %s, \"queries\": [\n",
        p.target.c_str(), static_cast<unsigned long long>(p.triples),
        p.gen_seconds, p.layout_seconds, p.legacy_bpt, p.compact_bpt,
        p.CutPct(), p.results_identical ? "true" : "false");
    for (size_t q = 0; q < p.queries.size(); ++q) {
      const QueryNumbers& n = p.queries[q];
      std::fprintf(f,
                   "      {\"name\": \"%s\", \"rows\": %llu, "
                   "\"legacy_p50_us\": %.1f, \"legacy_p95_us\": %.1f, "
                   "\"compact_p50_us\": %.1f, \"compact_p95_us\": %.1f}%s\n",
                   n.name, static_cast<unsigned long long>(n.rows),
                   n.legacy_p50_us, n.legacy_p95_us, n.compact_p50_us,
                   n.compact_p95_us, q + 1 < p.queries.size() ? "," : "");
    }
    std::fprintf(f,
                 "     ], \"delta_ops\": %llu, \"delta_apply_ms\": %.3f, "
                 "\"cow_clone_us\": %.1f}%s\n",
                 static_cast<unsigned long long>(p.delta_ops),
                 p.delta_apply_ms, p.cow_clone_us,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("SC1 | Million-triple scale: compact layout vs sorted runs\n");

  std::vector<std::string> targets = {"100k", "300k", "1m"};
  const char* big = std::getenv("SOFOS_SCALE_BIG");
  if (big != nullptr && big[0] == '1') targets.push_back("10m");

  ThreadPool pool(ThreadPool::DefaultNumThreads());
  std::vector<PointResult> points;
  for (const std::string& target : targets) {
    PointResult point;
    if (!MeasurePoint(target, &pool, &point)) {
      std::fprintf(stderr, "scale point %s failed\n", target.c_str());
      return 1;
    }
    points.push_back(std::move(point));
  }

  TablePrinter table({"target", "triples", "gen s", "layout s", "legacy B/t",
                      "compact B/t", "cut %", "delta ms", "clone us"});
  for (const PointResult& p : points) {
    table.AddRow({p.target, TablePrinter::Cell(p.triples),
                  TablePrinter::Cell(p.gen_seconds, 2),
                  TablePrinter::Cell(p.layout_seconds, 2),
                  TablePrinter::Cell(p.legacy_bpt, 1),
                  TablePrinter::Cell(p.compact_bpt, 1),
                  TablePrinter::Cell(p.CutPct(), 1),
                  TablePrinter::Cell(p.delta_apply_ms, 2),
                  TablePrinter::Cell(p.cow_clone_us, 1)});
  }
  table.Print();

  TablePrinter queries({"target", "query", "rows", "legacy p50", "legacy p95",
                        "compact p50", "compact p95"});
  for (const PointResult& p : points) {
    for (const QueryNumbers& n : p.queries) {
      queries.AddRow({p.target, n.name, TablePrinter::Cell(n.rows),
                      TablePrinter::Cell(n.legacy_p50_us, 1),
                      TablePrinter::Cell(n.legacy_p95_us, 1),
                      TablePrinter::Cell(n.compact_p50_us, 1),
                      TablePrinter::Cell(n.compact_p95_us, 1)});
    }
  }
  queries.Print();

  if (argc > 1) WriteJson(argv[1], points);

  std::printf(
      "\nReading: compact CSR shards + the front-coded dictionary cut\n"
      "bytes/triple by the reported percentage with byte-identical query\n"
      "answers (asserted above, latencies in microseconds). Delta merges\n"
      "decompress only the touched shards; COW clones stay O(shards)\n"
      "regardless of graph size.\n");
  return 0;
}
