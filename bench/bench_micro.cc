/// E8 — substrate microbenchmarks (google-benchmark): the paper claims
/// SOFOS "provides a generic solution to be deployed on any RDF triple
/// store"; this bench characterizes the bundled store and SPARQL engine so
/// that workload-level numbers (E3–E6) can be interpreted.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/registry.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "sparql/parser.h"
#include "sparql/query_engine.h"

namespace {

using namespace sofos;

/// Shared demo-scale GeoPop store (built once).
TripleStore* SharedStore() {
  static TripleStore* store = [] {
    auto* s = new TripleStore();
    auto spec = datagen::GenerateByName("geopop", datagen::Scale::kDemo, 42, s);
    if (!spec.ok()) std::abort();
    return s;
  }();
  return store;
}

void BM_DictionaryIntern(benchmark::State& state) {
  Dictionary dict;
  Rng rng(1);
  std::vector<Term> terms;
  for (int i = 0; i < 4096; ++i) {
    terms.push_back(Term::Iri("http://bench/term/" +
                              std::to_string(rng.Uniform(2048))));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Intern(terms[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryIntern);

void BM_StoreAddFinalize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    TripleStore store;
    std::vector<TermId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(store.Intern(Term::Iri("http://n/" + std::to_string(i))));
    }
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      store.Add(ids[rng.Uniform(64)], ids[rng.Uniform(8)], ids[rng.Uniform(64)]);
    }
    store.Finalize();
    benchmark::DoNotOptimize(store.NumTriples());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StoreAddFinalize)->Arg(1000)->Arg(10000);

void BM_ScanByPredicate(benchmark::State& state) {
  TripleStore* store = SharedStore();
  TermId pred = store->mutable_dictionary()->Intern(
      Term::Iri("http://sofos.example.org/geo#population"));
  for (auto _ : state) {
    auto range = store->Scan(kNullTermId, pred, kNullTermId);
    uint64_t count = 0;
    for (const Triple& t : range) count += t.o;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(store->Scan(kNullTermId, pred, kNullTermId).size()));
}
BENCHMARK(BM_ScanByPredicate);

void BM_ScanBoundPair(benchmark::State& state) {
  TripleStore* store = SharedStore();
  TermId pred = store->mutable_dictionary()->Intern(
      Term::Iri("http://sofos.example.org/geo#year"));
  TermId year = store->mutable_dictionary()->Intern(Term::Integer(2015));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Count(kNullTermId, pred, year));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanBoundPair);

void BM_TwoHopJoin(benchmark::State& state) {
  TripleStore* store = SharedStore();
  sparql::QueryEngine engine(store);
  const std::string query =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country ?continent WHERE {\n"
      "  ?obs geo:country ?country . ?country geo:partOf ?continent }";
  for (auto _ : state) {
    auto result = engine.Execute(query);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result->NumRows());
  }
}
BENCHMARK(BM_TwoHopJoin);

void BM_StarJoinAggregate(benchmark::State& state) {
  TripleStore* store = SharedStore();
  sparql::QueryEngine engine(store);
  const std::string query =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "} GROUP BY ?country";
  for (auto _ : state) {
    auto result = engine.Execute(query);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result->NumRows());
  }
}
BENCHMARK(BM_StarJoinAggregate);

void BM_FilteredAggregate(benchmark::State& state) {
  TripleStore* store = SharedStore();
  sparql::QueryEngine engine(store);
  const std::string query =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  FILTER(?year >= 2014 && ?year <= 2016) }";
  for (auto _ : state) {
    auto result = engine.Execute(query);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result->NumRows());
  }
}
BENCHMARK(BM_FilteredAggregate);

void BM_ParseSparql(benchmark::State& state) {
  const std::string query =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?a ?b (SUM(?v) AS ?s) WHERE { ?x geo:a ?a ; geo:b ?b ; geo:v ?v .\n"
      "FILTER(?v > 10 && ?a != ?b) } GROUP BY ?a ?b ORDER BY DESC(?s) LIMIT 10";
  for (auto _ : state) {
    auto parsed = sparql::Parser::Parse(query);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseSparql);

void BM_TurtleRoundTrip(benchmark::State& state) {
  TurtleWriter writer;
  std::string ntriples = writer.WriteNTriples(*SharedStore());
  for (auto _ : state) {
    TripleStore store;
    TurtleParser parser;
    if (!parser.Parse(ntriples, &store).ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(store.NumTriples());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(ntriples.size()));
}
BENCHMARK(BM_TurtleRoundTrip);

}  // namespace

BENCHMARK_MAIN();
