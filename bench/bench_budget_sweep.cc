/// E4 — demo "User Selected Views" sweet-spot exploration: sweep the view
/// budget k and chart storage amplification against workload time for each
/// cost model. Expected shape: time falls and amplification rises with k,
/// with diminishing returns.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "workload/generator.h"

int main() {
  using namespace sofos;
  std::printf("E4 | Budget sweep: space amplification vs workload time\n");

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);

    workload::WorkloadGenerator generator(&engine.facet(), engine.store());
    workload::WorkloadOptions options;
    options.num_queries = 25;
    options.seed = 77;
    auto queries = generator.Generate(options);
    if (!queries.ok()) return 1;

    std::printf("\n[%s]\n\n", name.c_str());
    TablePrinter table({"model", "k", "ampl", "mean us", "median us", "hits"});

    for (core::CostModelKind kind :
         {core::CostModelKind::kTripleCount, core::CostModelKind::kAggValueCount,
          core::CostModelKind::kRandom}) {
      auto model = engine.MakeModel(kind);
      if (!model.ok()) return 1;
      for (size_t k : {0, 1, 2, 3, 4, 6, 8, 12, 16}) {
        if (k > 0) {
          auto selection = engine.SelectViews(**model, k);
          if (!selection.ok()) return 1;
          if (!engine.MaterializeSelection(*selection).ok()) return 1;
        }
        auto report = engine.RunWorkload(*queries, /*allow_views=*/k > 0);
        if (!report.ok()) return 1;
        table.AddRow({(*model)->name(), TablePrinter::Cell(uint64_t{k}),
                      TablePrinter::Cell(engine.StorageAmplification(), 2),
                      TablePrinter::Cell(report->mean_micros, 1),
                      TablePrinter::Cell(report->median_micros, 1),
                      TablePrinter::Cell(report->view_hits)});
        if (k > 0 && !engine.DropMaterializedViews().ok()) return 1;
      }
    }
    table.Print();
  }
  return 0;
}
