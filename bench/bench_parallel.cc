/// P1 — parallel execution core scaling curve: lattice profiling and
/// batched workload execution at 1/2/4/8 threads. Verifies on the fly that
/// every thread count produces the same profile statistics, greedy
/// selection, and workload answers as the serial run (the determinism
/// contract), then reports wall-clock speedups.
///
///   ./bench_parallel [json_path]
///
/// With `json_path` the results are also written as one JSON document (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kRepetitions = 3;
const unsigned kThreadCounts[] = {1, 2, 4, 8};

struct ScalingPoint {
  unsigned threads = 1;
  double profile_ms = 0.0;
  double workload_wall_ms = 0.0;
  double workload_cpu_ms = 0.0;
};

struct DatasetCurve {
  std::string name;
  std::vector<ScalingPoint> points;
};

double MedianOfRuns(const std::vector<double>& runs) {
  return bench::Median(runs);
}

/// One dataset at one thread count: median profiling wall time and median
/// batched-workload wall time over kRepetitions runs. Returns false when
/// results diverge from the serial reference.
bool MeasurePoint(const std::string& dataset, unsigned threads,
                  const core::SelectionResult& reference_selection,
                  uint64_t reference_rows_scanned, ScalingPoint* point) {
  core::SofosEngine engine;
  bench::LoadEngine(&engine, dataset, datagen::Scale::kDemo);
  engine.SetNumThreads(threads);
  point->threads = threads;

  std::vector<double> profile_runs;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    WallTimer timer;
    if (!engine.Profile().ok()) return false;
    profile_runs.push_back(timer.ElapsedMillis());
  }
  point->profile_ms = MedianOfRuns(profile_runs);

  core::TripleCountCostModel model;
  auto selection = engine.SelectViews(model, 4);
  if (!selection.ok()) return false;
  if (selection->views != reference_selection.views) {
    std::fprintf(stderr, "[%s] threads=%u: selection diverged from serial!\n",
                 dataset.c_str(), threads);
    return false;
  }
  if (!engine.MaterializeSelection(*selection).ok()) return false;

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 60;
  options.seed = 17;
  auto queries = generator.Generate(options);
  if (!queries.ok()) return false;

  std::vector<double> wall_runs, cpu_runs;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto report = engine.RunWorkload(*queries, /*allow_views=*/true);
    if (!report.ok()) return false;
    if (report->total_rows_scanned != reference_rows_scanned) {
      std::fprintf(stderr, "[%s] threads=%u: workload diverged from serial!\n",
                   dataset.c_str(), threads);
      return false;
    }
    wall_runs.push_back(report->wall_micros / 1000.0);
    cpu_runs.push_back(report->total_micros / 1000.0);
  }
  point->workload_wall_ms = MedianOfRuns(wall_runs);
  point->workload_cpu_ms = MedianOfRuns(cpu_runs);
  return true;
}

/// Serial reference figures used to cross-check every other thread count.
bool SerialReference(const std::string& dataset,
                     core::SelectionResult* selection,
                     uint64_t* rows_scanned) {
  core::SofosEngine engine;
  bench::LoadEngine(&engine, dataset, datagen::Scale::kDemo);
  engine.SetNumThreads(1);
  if (!engine.Profile().ok()) return false;
  core::TripleCountCostModel model;
  auto sel = engine.SelectViews(model, 4);
  if (!sel.ok()) return false;
  *selection = *sel;
  if (!engine.MaterializeSelection(*sel).ok()) return false;
  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 60;
  options.seed = 17;
  auto queries = generator.Generate(options);
  if (!queries.ok()) return false;
  auto report = engine.RunWorkload(*queries, /*allow_views=*/true);
  if (!report.ok()) return false;
  *rows_scanned = report->total_rows_scanned;
  return true;
}

void WriteJson(const std::string& path, const std::vector<DatasetCurve>& curves) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               ThreadPool::DefaultNumThreads());
  std::fprintf(f, "  \"repetitions\": %d,\n  \"datasets\": [\n", kRepetitions);
  for (size_t d = 0; d < curves.size(); ++d) {
    const DatasetCurve& curve = curves[d];
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n", curve.name.c_str());
    for (size_t i = 0; i < curve.points.size(); ++i) {
      const ScalingPoint& p = curve.points[i];
      std::fprintf(f,
                   "      {\"threads\": %u, \"profile_ms\": %.3f, "
                   "\"workload_wall_ms\": %.3f, \"workload_cpu_ms\": %.3f}%s\n",
                   p.threads, p.profile_ms, p.workload_wall_ms,
                   p.workload_cpu_ms, i + 1 < curve.points.size() ? "," : "");
    }
    const ScalingPoint& serial = curve.points.front();
    double profile_speedup_4t = 0.0, workload_speedup_4t = 0.0;
    for (const ScalingPoint& p : curve.points) {
      if (p.threads == 4) {
        if (p.profile_ms > 0) profile_speedup_4t = serial.profile_ms / p.profile_ms;
        if (p.workload_wall_ms > 0) {
          workload_speedup_4t = serial.workload_wall_ms / p.workload_wall_ms;
        }
      }
    }
    std::fprintf(f,
                 "    ], \"profile_speedup_4t\": %.3f, "
                 "\"workload_speedup_4t\": %.3f}%s\n",
                 profile_speedup_4t, workload_speedup_4t,
                 d + 1 < curves.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("P1 | Parallel execution core: scaling over threads\n");
  std::printf("hardware_concurrency=%u\n", ThreadPool::DefaultNumThreads());

  std::vector<DatasetCurve> curves;
  for (const std::string& name : datagen::DatasetNames()) {
    core::SelectionResult reference_selection;
    uint64_t reference_rows_scanned = 0;
    if (!SerialReference(name, &reference_selection, &reference_rows_scanned)) {
      return 1;
    }

    DatasetCurve curve;
    curve.name = name;
    TablePrinter table({"threads", "profile ms", "speedup", "workload wall ms",
                        "speedup", "workload cpu ms"});
    for (unsigned threads : kThreadCounts) {
      ScalingPoint point;
      if (!MeasurePoint(name, threads, reference_selection,
                        reference_rows_scanned, &point)) {
        return 1;
      }
      curve.points.push_back(point);
      const ScalingPoint& serial = curve.points.front();
      table.AddRow(
          {TablePrinter::Cell(uint64_t{threads}),
           TablePrinter::Cell(point.profile_ms, 1),
           TablePrinter::Cell(
               point.profile_ms > 0 ? serial.profile_ms / point.profile_ms : 0.0,
               2),
           TablePrinter::Cell(point.workload_wall_ms, 1),
           TablePrinter::Cell(point.workload_wall_ms > 0
                                  ? serial.workload_wall_ms / point.workload_wall_ms
                                  : 0.0,
                              2),
           TablePrinter::Cell(point.workload_cpu_ms, 1)});
    }
    std::printf("\n[%s] (determinism vs serial verified each point)\n\n",
                name.c_str());
    table.Print();
    curves.push_back(std::move(curve));
  }

  if (argc > 1) WriteJson(argv[1], curves);

  std::printf(
      "\nReading: profiling fans one task per lattice node and the workload\n"
      "runner one task per query, so both scale with cores until the root\n"
      "view / slowest query dominates; workload cpu ms stays flat — the\n"
      "speedup is real concurrency, not double-counted latency.\n");
  return 0;
}
