/// E2 — demo "Exploration of the Full Lattice": every view of each facet
/// with its size statistics and build time, plus the cost of materializing
/// the complete lattice (why "such a large structure" is impractical).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

int main() {
  using namespace sofos;
  std::printf("E2 | Full lattice exploration (paper §4)\n");

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);
    const core::LatticeProfile* profile = engine.profile();

    std::printf("\n[%s] base graph: %llu triples; lattice of %zu views\n\n",
                name.c_str(),
                static_cast<unsigned long long>(engine.CurrentTriples()),
                engine.lattice().size());

    TablePrinter table({"view", "level", "rows", "enc. triples", "enc. nodes",
                        "enc. bytes", "build ms"});
    for (const core::ViewStats& stats : profile->views) {
      table.AddRow({engine.facet().MaskLabel(stats.mask),
                    TablePrinter::Cell(int64_t{core::Lattice::Level(stats.mask)}),
                    TablePrinter::Cell(stats.result_rows),
                    TablePrinter::Cell(stats.encoded_triples),
                    TablePrinter::Cell(stats.encoded_nodes),
                    FormatBytes(stats.encoded_bytes),
                    TablePrinter::Cell(stats.eval_micros / 1000.0, 2)});
    }
    table.Print();

    // Materialize everything to show the full-lattice price.
    WallTimer timer;
    auto views = engine.MaterializeViews(engine.lattice().AllMasks());
    if (!views.ok()) {
      std::fprintf(stderr, "%s\n", views.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nfull lattice materialized in %.1f ms -> %llu triples "
        "(amplification %.2fx)\n",
        timer.ElapsedMillis(),
        static_cast<unsigned long long>(engine.CurrentTriples()),
        engine.StorageAmplification());
  }
  return 0;
}
