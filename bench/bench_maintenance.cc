/// M1 — incremental maintenance vs the full-recompute path, per dataset:
///
///   store level:  TripleStore::ApplyDelta (staged delta, six linear
///                 merges) vs a full six-way re-Finalize of the same final
///                 graph, for a small-delta workload (~0.5% of |G|).
///   engine level: SofosEngine::ApplyUpdates (delta merge + roll-up view
///                 maintenance + staleness tracking) vs UpdateBaseGraph
///                 (strip views, rebuild base, re-profile, rematerialize).
///
///   ./bench_maintenance [json_path]
///
/// With `json_path` the results are written as BENCH_maintenance.json (the
/// perf-trajectory artifact consumed by scripts/run_benches.sh).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "workload/generator.h"

namespace {

using namespace sofos;

constexpr int kRepetitions = 3;
constexpr double kBatchFraction = 0.005;  // "small delta": 0.5% of |G|

/// Delta-size sweep (tentpole artifact): delta-rule maintenance vs full
/// root re-evaluation across delta sizes at a scale where the asymptotic
/// gap is visible. Fractions bracket the default auto-crossover (0.02).
constexpr const char* kSweepDataset = "geopop";
constexpr const char* kSweepScale = "300k";
constexpr double kSweepFractions[] = {0.0001, 0.001, 0.01, 0.05};

struct DatasetResult {
  std::string name;
  uint64_t base_triples = 0;
  uint64_t delta_ops = 0;
  double delta_merge_ms = 0.0;
  double full_finalize_ms = 0.0;
  double incremental_ms = 0.0;
  double full_update_ms = 0.0;

  double StoreSpeedup() const {
    return delta_merge_ms > 0 ? full_finalize_ms / delta_merge_ms : 0.0;
  }
  double EngineSpeedup() const {
    return incremental_ms > 0 ? full_update_ms / incremental_ms : 0.0;
  }
};

/// Interns a term-level delta against `store`'s dictionary.
void EncodeDelta(TripleStore* store, const core::maintenance::GraphDelta& delta,
                 std::vector<Triple>* adds, std::vector<Triple>* deletes) {
  for (const auto& t : delta.adds) {
    adds->push_back(Triple{store->Intern(t.s), store->Intern(t.p),
                           store->Intern(t.o)});
  }
  for (const auto& t : delta.deletes) {
    deletes->push_back(Triple{store->Intern(t.s), store->Intern(t.p),
                              store->Intern(t.o)});
  }
}

/// Store-level comparison: merge a small delta vs re-finalizing the whole
/// graph that results from it. The delta is applied and then inverted so
/// every repetition starts from the same state.
bool MeasureStore(const std::string& dataset, DatasetResult* out) {
  TripleStore store;
  auto spec = datagen::GenerateByName(dataset, datagen::Scale::kDemo, 42, &store);
  if (!spec.ok()) return false;
  out->base_triples = store.NumTriples();

  workload::UpdateStreamOptions options;
  options.num_batches = 1;
  options.batch_fraction = kBatchFraction;
  options.seed = 21;
  auto stream =
      workload::GenerateUpdateStream(store.triples(), store.dictionary(), options);
  if (!stream.ok() || stream->empty()) return false;
  std::vector<Triple> adds, deletes;
  EncodeDelta(&store, (*stream)[0], &adds, &deletes);
  out->delta_ops = adds.size() + deletes.size();

  std::vector<double> merge_runs, finalize_runs;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    // Forward delta through the staged-merge path.
    for (const Triple& t : adds) store.StageAdd(t.s, t.p, t.o);
    for (const Triple& t : deletes) store.StageDelete(t.s, t.p, t.o);
    WallTimer merge_timer;
    store.ApplyDelta();
    merge_runs.push_back(merge_timer.ElapsedMillis());

    // The legacy path would rebuild the same final graph with a full
    // six-way re-sort: time exactly that on identical content.
    std::vector<Triple> content = store.triples();
    store.ReplaceTriples(std::move(content));
    WallTimer finalize_timer;
    store.Finalize();
    finalize_runs.push_back(finalize_timer.ElapsedMillis());

    // Invert the delta to restore the starting state for the next rep.
    for (const Triple& t : deletes) store.StageAdd(t.s, t.p, t.o);
    for (const Triple& t : adds) store.StageDelete(t.s, t.p, t.o);
    store.ApplyDelta();
  }
  out->delta_merge_ms = bench::Median(merge_runs);
  out->full_finalize_ms = bench::Median(finalize_runs);
  return true;
}

/// Engine-level comparison: ApplyUpdates (incremental maintenance) vs
/// UpdateBaseGraph (full rebuild + re-profile + rematerialization), same
/// update stream, same selected views.
bool MeasureEngine(const std::string& dataset, DatasetResult* out) {
  auto setup = [&](core::SofosEngine* engine,
                   std::vector<uint32_t>* masks) -> bool {
    bench::LoadEngine(engine, dataset, datagen::Scale::kDemo);
    core::TripleCountCostModel model;
    auto selection = engine->SelectViews(model, 3);
    if (!selection.ok()) return false;
    if (!engine->MaterializeSelection(*selection).ok()) return false;
    *masks = selection->views;
    return true;
  };

  core::SofosEngine incremental;
  std::vector<uint32_t> masks;
  if (!setup(&incremental, &masks)) return false;

  workload::UpdateStreamOptions options;
  options.num_batches = kRepetitions;
  options.batch_fraction = kBatchFraction;
  options.seed = 23;
  auto stream = workload::GenerateUpdateStream(
      incremental.base_snapshot(), incremental.store()->dictionary(), options);
  if (!stream.ok()) return false;

  std::vector<double> incremental_runs;
  for (const auto& delta : *stream) {
    WallTimer timer;
    if (!incremental.ApplyUpdates(delta).ok()) return false;
    incremental_runs.push_back(timer.ElapsedMillis());
  }

  core::SofosEngine full;
  std::vector<uint32_t> full_masks;
  if (!setup(&full, &full_masks)) return false;
  std::vector<double> full_runs;
  for (const auto& delta : *stream) {
    WallTimer timer;
    Status status = full.UpdateBaseGraph([&](TripleStore* store) {
      // Express the delta through the legacy interface: filter deletes out
      // of the base content, append adds.
      std::vector<Triple> deletes;
      for (const auto& t : delta.deletes) {
        auto s = store->dictionary().Lookup(t.s);
        auto p = store->dictionary().Lookup(t.p);
        auto o = store->dictionary().Lookup(t.o);
        if (s && p && o) deletes.push_back(Triple{*s, *p, *o});
      }
      std::sort(deletes.begin(), deletes.end());
      std::vector<Triple> next;
      next.reserve(store->NumTriples());
      for (const Triple& t : store->triples()) {
        if (!std::binary_search(deletes.begin(), deletes.end(), t)) {
          next.push_back(t);
        }
      }
      for (const auto& t : delta.adds) {
        next.push_back(Triple{store->Intern(t.s), store->Intern(t.p),
                              store->Intern(t.o)});
      }
      store->ReplaceTriples(std::move(next));
    });
    if (!status.ok()) return false;
    full_runs.push_back(timer.ElapsedMillis());
  }

  out->incremental_ms = bench::Median(incremental_runs);
  out->full_update_ms = bench::Median(full_runs);
  return true;
}

struct SweepPoint {
  double fraction = 0.0;
  uint64_t delta_ops = 0;
  uint64_t delta_bindings = 0;
  double delta_mode_us = 0.0;  // median maintenance micros, delta rules
  double full_mode_us = 0.0;   // median maintenance micros, root recompute

  double Speedup() const {
    return delta_mode_us > 0 ? full_mode_us / delta_mode_us : 0.0;
  }
};

/// Maintenance-only cost of one ApplyUpdates call: root-table repair (or
/// recompute) + per-view roll-up maintenance + staged view-edit merge.
/// The base-graph merge is identical on both paths and excluded.
double MaintenanceMicros(const core::UpdateOutcome& outcome) {
  const auto& m = outcome.maintenance;
  return m.root_query_micros + m.maintain_micros + m.merge_micros;
}

/// Runs the same update stream through a force-delta and a force-full
/// engine over the 300k-scale graph; the two evolve in lockstep (the
/// equivalence property maintenance_test pins down), so every batch
/// measures both modes against identical states.
bool MeasureSweep(std::vector<SweepPoint>* out, uint64_t* base_triples) {
  auto spec = datagen::ParseScaleSpec(kSweepScale);
  if (!spec.ok()) return false;

  auto setup = [&](core::SofosEngine* engine,
                   core::maintenance::MaintainOptions::Mode mode) -> bool {
    TripleStore store;
    store.SetShardCount(engine->ResolvedShardCount());
    auto dataset = datagen::GenerateByName(kSweepDataset, *spec, 42, &store);
    if (!dataset.ok()) return false;
    auto facet = core::Facet::FromSparql(dataset->facet_sparql, dataset->name,
                                         dataset->dim_labels);
    if (!facet.ok()) return false;
    if (!engine->LoadStore(std::move(store)).ok()) return false;
    if (!engine->SetFacet(std::move(facet).value()).ok()) return false;
    if (!engine->Profile().ok()) return false;
    core::TripleCountCostModel model;
    auto selection = engine->SelectViews(model, 3);
    if (!selection.ok()) return false;
    if (!engine->MaterializeSelection(*selection).ok()) return false;
    core::maintenance::MaintainOptions options;
    options.mode = mode;
    engine->SetMaintainOptions(options);
    return true;
  };
  core::SofosEngine delta_engine, full_engine;
  if (!setup(&delta_engine,
             core::maintenance::MaintainOptions::Mode::kForceDelta) ||
      !setup(&full_engine,
             core::maintenance::MaintainOptions::Mode::kForceFull)) {
    return false;
  }
  *base_triples = delta_engine.BaseTriples();

  int seed = 41;
  for (double fraction : kSweepFractions) {
    SweepPoint point;
    point.fraction = fraction;
    std::vector<double> delta_runs, full_runs;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      workload::UpdateStreamOptions options;
      options.num_batches = 1;
      options.batch_fraction = fraction;
      options.seed = ++seed;
      auto stream = workload::GenerateUpdateStream(
          delta_engine.base_snapshot(), delta_engine.store()->dictionary(),
          options);
      if (!stream.ok() || stream->empty()) return false;
      auto delta_out = delta_engine.ApplyUpdates((*stream)[0]);
      auto full_out = full_engine.ApplyUpdates((*stream)[0]);
      if (!delta_out.ok() || !full_out.ok()) return false;
      if (delta_engine.CurrentTriples() != full_engine.CurrentTriples()) {
        std::fprintf(stderr, "sweep: delta/full engines diverged\n");
        return false;
      }
      point.delta_ops += (*stream)[0].adds.size() + (*stream)[0].deletes.size();
      point.delta_bindings += delta_out->maintenance.delta_bindings;
      delta_runs.push_back(MaintenanceMicros(*delta_out));
      full_runs.push_back(MaintenanceMicros(*full_out));
    }
    point.delta_ops /= kRepetitions;
    point.delta_bindings /= kRepetitions;
    point.delta_mode_us = bench::Median(delta_runs);
    point.full_mode_us = bench::Median(full_runs);
    out->push_back(point);
  }
  return true;
}

/// The measured cost crossover: the delta fraction where delta-mode cost
/// meets full-mode cost, log-linearly interpolated between the bracketing
/// sweep points. If delta mode wins everywhere tested, the largest tested
/// fraction is a lower bound (reported as such).
double MeasuredCrossover(const std::vector<SweepPoint>& sweep) {
  for (size_t i = 1; i < sweep.size(); ++i) {
    double s0 = sweep[i - 1].Speedup(), s1 = sweep[i].Speedup();
    if (s0 >= 1.0 && s1 < 1.0 && s0 > s1) {
      double t = (s0 - 1.0) / (s0 - s1);
      return std::exp(std::log(sweep[i - 1].fraction) +
                      t * (std::log(sweep[i].fraction) -
                           std::log(sweep[i - 1].fraction)));
    }
  }
  return sweep.empty() ? 0.0 : sweep.back().fraction;
}

void WriteJson(const std::string& path, const std::vector<DatasetResult>& results,
               const std::vector<SweepPoint>& sweep, uint64_t sweep_triples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"maintenance\",\n");
  std::fprintf(f, "  \"batch_fraction\": %.4f,\n  \"repetitions\": %d,\n",
               kBatchFraction, kRepetitions);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const DatasetResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"base_triples\": %llu, \"delta_ops\": %llu,\n"
        "     \"delta_merge_ms\": %.3f, \"full_finalize_ms\": %.3f, "
        "\"store_speedup\": %.2f,\n"
        "     \"incremental_ms\": %.3f, \"full_update_ms\": %.3f, "
        "\"engine_speedup\": %.2f}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.base_triples),
        static_cast<unsigned long long>(r.delta_ops), r.delta_merge_ms,
        r.full_finalize_ms, r.StoreSpeedup(), r.incremental_ms,
        r.full_update_ms, r.EngineSpeedup(),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sweep_dataset\": \"%s\",\n  \"sweep_triples\": %llu,\n",
               kSweepDataset, static_cast<unsigned long long>(sweep_triples));
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"fraction\": %.4f, \"delta_ops\": %llu, "
        "\"delta_bindings\": %llu,\n"
        "     \"delta_mode_us\": %.1f, \"full_mode_us\": %.1f, "
        "\"delta_speedup\": %.2f}%s\n",
        p.fraction, static_cast<unsigned long long>(p.delta_ops),
        static_cast<unsigned long long>(p.delta_bindings), p.delta_mode_us,
        p.full_mode_us, p.Speedup(), i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"crossover_fraction\": %.4f,\n  ",
               MeasuredCrossover(sweep));
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("M1 | Incremental maintenance vs full recompute (%.1f%% deltas)\n",
              kBatchFraction * 100.0);

  std::vector<DatasetResult> results;
  TablePrinter table({"dataset", "|G|", "ops", "merge ms", "refinalize ms",
                      "speedup", "incr ms", "full ms", "speedup"});
  for (const std::string& name : datagen::DatasetNames()) {
    DatasetResult result;
    result.name = name;
    if (!MeasureStore(name, &result) || !MeasureEngine(name, &result)) {
      std::fprintf(stderr, "dataset %s failed\n", name.c_str());
      return 1;
    }
    table.AddRow({result.name,
                  TablePrinter::Cell(result.base_triples),
                  TablePrinter::Cell(result.delta_ops),
                  TablePrinter::Cell(result.delta_merge_ms, 2),
                  TablePrinter::Cell(result.full_finalize_ms, 2),
                  TablePrinter::Cell(result.StoreSpeedup(), 2),
                  TablePrinter::Cell(result.incremental_ms, 2),
                  TablePrinter::Cell(result.full_update_ms, 2),
                  TablePrinter::Cell(result.EngineSpeedup(), 2)});
    results.push_back(result);
  }
  table.Print();

  std::printf("\nM1 | Delta-rule repair vs full root re-evaluation (%s @ %s)\n",
              kSweepDataset, kSweepScale);
  std::vector<SweepPoint> sweep;
  uint64_t sweep_triples = 0;
  if (!MeasureSweep(&sweep, &sweep_triples)) {
    std::fprintf(stderr, "delta-size sweep failed\n");
    return 1;
  }
  TablePrinter sweep_table({"fraction", "ops", "bindings", "delta us",
                            "full us", "speedup"});
  for (const SweepPoint& p : sweep) {
    sweep_table.AddRow({TablePrinter::Cell(p.fraction, 4),
                        TablePrinter::Cell(p.delta_ops),
                        TablePrinter::Cell(p.delta_bindings),
                        TablePrinter::Cell(p.delta_mode_us, 1),
                        TablePrinter::Cell(p.full_mode_us, 1),
                        TablePrinter::Cell(p.Speedup(), 2)});
  }
  sweep_table.Print();
  std::printf("measured crossover fraction: %.4f\n", MeasuredCrossover(sweep));

  if (argc > 1) WriteJson(argv[1], results, sweep, sweep_triples);

  std::printf(
      "\nReading: the staged-delta merge replaces the six-way O(n log n)\n"
      "re-sort with linear merges, and roll-up maintenance replaces k view\n"
      "queries + re-profiling with one root-view evaluation + targeted row\n"
      "repairs — both speedups grow with |G| / delta size.\n");
  return 0;
}
