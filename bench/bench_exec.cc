/// P3 — vectorized, morsel-parallel query execution: root-view query
/// scaling curve. For each bundled dataset, measures the facet's root-view
/// query (the Amdahl bottleneck of profiling and of ApplyUpdates) under
///
///   - the legacy row-at-a-time Volcano executor (the serial baseline),
///   - the vectorized batch engine at 1/2/4/8 morsel workers,
///
/// verifying on the fly that every configuration returns byte-identical
/// results (the executor determinism contract), then reports speedups:
/// `speedup_vs_volcano_4t` is the acceptance metric (batch @ 4 workers vs
/// the serial executor), `batch_scaling_4t` isolates the exchange scaling
/// (batch @ 4 vs batch @ 1). On a single-core host the scaling column
/// degenerates to ~1x; the batch-vs-volcano column still reflects the
/// vectorization win (hash joins, hash aggregation, no per-row allocation).
///
///   ./bench_exec [json_path]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "sparql/query_engine.h"

namespace {

using namespace sofos;

constexpr int kRepetitions = 5;
const unsigned kWorkerCounts[] = {1, 2, 4, 8};

struct ExecPoint {
  unsigned dop = 1;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  uint64_t morsels = 0;
};

struct DatasetCurve {
  std::string name;
  uint64_t pattern_rows = 0;  // bindings the root query aggregates
  double volcano_ms = 0.0;
  std::vector<ExecPoint> points;
};

/// Canonical fingerprint of a result for cross-configuration comparison.
std::string Fingerprint(const sparql::QueryResult& result) {
  std::string out;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      out += result.bound[r][c] ? result.rows[r][c].ToNTriples() : "UNBOUND";
      out += '|';
    }
    out += '\n';
  }
  return out;
}

/// Median wall time of the root query under `options`; returns false on a
/// query error or a result mismatch against `reference`.
bool Measure(TripleStore* store, const std::string& query,
             const sparql::ExecOptions& options, const std::string& reference,
             double* wall_ms, double* cpu_ms, uint64_t* morsels) {
  std::vector<double> walls, cpus;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    sparql::QueryEngine engine(store, options);
    auto result = engine.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
      return false;
    }
    if (!reference.empty() && Fingerprint(*result) != reference) {
      std::fprintf(stderr, "results diverged from the serial executor!\n");
      return false;
    }
    walls.push_back(result->stats.exec_micros / 1000.0);
    cpus.push_back(result->stats.cpu_micros / 1000.0);
    if (morsels != nullptr) *morsels = result->stats.morsels;
  }
  *wall_ms = bench::Median(walls);
  if (cpu_ms != nullptr) *cpu_ms = bench::Median(cpus);
  return true;
}

bool MeasureDataset(const std::string& name, DatasetCurve* curve) {
  core::SofosEngine engine;
  bench::LoadEngine(&engine, name, datagen::Scale::kDemo);
  TripleStore* store = engine.store();
  const core::Facet& facet = engine.facet();
  const std::string query = facet.ViewQuerySparql(facet.FullMask());

  curve->name = name;
  curve->pattern_rows = engine.profile()->base_pattern_rows;

  // Serial baseline: the pre-refactor row-at-a-time executor.
  sparql::ExecOptions volcano;
  volcano.mode = sparql::ExecMode::kVolcano;
  std::string reference;
  {
    sparql::QueryEngine reference_engine(store, volcano);
    auto result = reference_engine.Execute(query);
    if (!result.ok()) return false;
    reference = Fingerprint(*result);
  }
  double cpu_unused = 0.0;
  if (!Measure(store, query, volcano, reference, &curve->volcano_ms, &cpu_unused,
               nullptr)) {
    return false;
  }

  for (unsigned dop : kWorkerCounts) {
    ThreadPool pool(dop);
    sparql::ExecOptions options;
    options.pool = dop > 1 ? &pool : nullptr;
    options.dop = dop;
    ExecPoint point;
    point.dop = dop;
    if (!Measure(store, query, options, reference, &point.wall_ms, &point.cpu_ms,
                 &point.morsels)) {
      return false;
    }
    curve->points.push_back(point);
  }
  return true;
}

double PointAt(const DatasetCurve& curve, unsigned dop) {
  for (const ExecPoint& p : curve.points) {
    if (p.dop == dop) return p.wall_ms;
  }
  return 0.0;
}

void WriteJson(const std::string& path, const std::vector<DatasetCurve>& curves) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"exec\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               ThreadPool::DefaultNumThreads());
  std::fprintf(f, "  \"repetitions\": %d,\n  \"datasets\": [\n", kRepetitions);
  for (size_t d = 0; d < curves.size(); ++d) {
    const DatasetCurve& curve = curves[d];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pattern_rows\": %llu, "
                 "\"volcano_serial_ms\": %.3f, \"points\": [\n",
                 curve.name.c_str(),
                 static_cast<unsigned long long>(curve.pattern_rows),
                 curve.volcano_ms);
    for (size_t i = 0; i < curve.points.size(); ++i) {
      const ExecPoint& p = curve.points[i];
      std::fprintf(f,
                   "      {\"dop\": %u, \"batch_wall_ms\": %.3f, "
                   "\"batch_cpu_ms\": %.3f, \"morsels\": %llu}%s\n",
                   p.dop, p.wall_ms, p.cpu_ms,
                   static_cast<unsigned long long>(p.morsels),
                   i + 1 < curve.points.size() ? "," : "");
    }
    double batch_1t = PointAt(curve, 1), batch_4t = PointAt(curve, 4);
    std::fprintf(f,
                 "    ], \"speedup_vs_volcano_1t\": %.3f, "
                 "\"speedup_vs_volcano_4t\": %.3f, \"batch_scaling_4t\": %.3f}%s\n",
                 batch_1t > 0 ? curve.volcano_ms / batch_1t : 0.0,
                 batch_4t > 0 ? curve.volcano_ms / batch_4t : 0.0,
                 batch_4t > 0 ? batch_1t / batch_4t : 0.0,
                 d + 1 < curves.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  ");
  bench::WriteMemoryJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("P3 | Vectorized morsel-parallel execution: root-view query\n");
  std::printf("hardware_concurrency=%u\n", ThreadPool::DefaultNumThreads());

  std::vector<DatasetCurve> curves;
  for (const std::string& name : datagen::DatasetNames()) {
    DatasetCurve curve;
    if (!MeasureDataset(name, &curve)) return 1;

    TablePrinter table(
        {"dop", "batch wall ms", "vs volcano", "vs batch 1t", "cpu ms", "morsels"});
    for (const ExecPoint& p : curve.points) {
      table.AddRow({TablePrinter::Cell(uint64_t{p.dop}),
                    TablePrinter::Cell(p.wall_ms, 3),
                    TablePrinter::Cell(
                        p.wall_ms > 0 ? curve.volcano_ms / p.wall_ms : 0.0, 2),
                    TablePrinter::Cell(
                        p.wall_ms > 0 ? curve.points.front().wall_ms / p.wall_ms
                                      : 0.0,
                        2),
                    TablePrinter::Cell(p.cpu_ms, 3),
                    TablePrinter::Cell(p.morsels)});
    }
    std::printf("\n[%s] root view over %llu pattern rows, volcano serial %.3f ms\n",
                curve.name.c_str(),
                static_cast<unsigned long long>(curve.pattern_rows),
                curve.volcano_ms);
    table.Print();
    curves.push_back(std::move(curve));
  }

  if (argc > 1) WriteJson(argv[1], curves);
  return 0;
}
