#ifndef SOFOS_BENCH_BENCH_UTIL_H_
#define SOFOS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/registry.h"

namespace sofos {
namespace bench {

/// Loads dataset `name` at `scale` into a fresh engine (store + facet +
/// exact profile). Exits the process on error — benches are scripts.
inline void LoadEngine(core::SofosEngine* engine, const std::string& name,
                       datagen::Scale scale, uint64_t seed = 42) {
  TripleStore store;
  // Build directly at the engine's shard count; LoadStore then no-ops its
  // repartition instead of rebuilding the freshly sorted indexes.
  store.SetShardCount(engine->ResolvedShardCount());
  auto spec = datagen::GenerateByName(name, scale, seed, &store);
  if (!spec.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 spec.status().ToString().c_str());
    std::exit(1);
  }
  auto facet =
      core::Facet::FromSparql(spec->facet_sparql, spec->name, spec->dim_labels);
  if (!facet.ok()) {
    std::fprintf(stderr, "facet %s: %s\n", name.c_str(),
                 facet.status().ToString().c_str());
    std::exit(1);
  }
  Status status = engine->LoadStore(std::move(store));
  if (status.ok()) status = engine->SetFacet(std::move(facet).value());
  if (status.ok()) status = engine->Profile().status();
  if (!status.ok()) {
    std::fprintf(stderr, "engine %s: %s\n", name.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
}

/// Pearson correlation coefficient.
inline double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

/// Average ranks with ties.
inline std::vector<double> Ranks(const std::vector<double>& values) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

/// Spearman rank correlation.
inline double Spearman(const std::vector<double>& x, const std::vector<double>& y) {
  return Pearson(Ranks(x), Ranks(y));
}

/// Median of a (copied) vector.
inline double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Process memory as the kernel accounts it (/proc/self/status): VmHWM is
/// the peak resident set over the process lifetime, VmRSS the current one.
/// Zeros on platforms without procfs — the JSON still validates.
struct MemoryStats {
  uint64_t vm_hwm_kb = 0;
  uint64_t vm_rss_kb = 0;
};

inline MemoryStats ReadMemoryStats() {
  MemoryStats stats;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return stats;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      stats.vm_hwm_kb = kb;
    } else if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      stats.vm_rss_kb = kb;
    }
  }
  std::fclose(f);
  return stats;
}

/// Emits the shared `"memory"` JSON object every BENCH_*.json carries (no
/// trailing comma or newline; callers place it like any other field).
inline void WriteMemoryJson(std::FILE* out) {
  MemoryStats stats = ReadMemoryStats();
  std::fprintf(out,
               "\"memory\": {\"vm_hwm_kb\": %llu, \"vm_rss_kb\": %llu}",
               static_cast<unsigned long long>(stats.vm_hwm_kb),
               static_cast<unsigned long long>(stats.vm_rss_kb));
}

}  // namespace bench
}  // namespace sofos

#endif  // SOFOS_BENCH_BENCH_UTIL_H_
