/// E6 — the paper's central claim (§3): "in the relational case ... there
/// is a linear correlation between number of tuples and running time. This
/// linear correlation does not trivially hold in the case of knowledge
/// graphs." For each cost model we correlate the estimated cost of every
/// lattice view against the *measured* time to answer that view's canonical
/// query from its materialization.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/training.h"
#include "sparql/query_engine.h"

int main() {
  using namespace sofos;
  std::printf("E6 | Estimated cost vs measured per-view query time\n");
  std::printf("    (Pearson r on raw values, Spearman rho on ranks)\n");

  for (const std::string& name : datagen::DatasetNames()) {
    core::SofosEngine engine;
    bench::LoadEngine(&engine, name, datagen::Scale::kDemo);

    core::LearnedTrainingOptions train_options;
    train_options.repetitions = 1;
    train_options.epochs = 200;
    if (!core::TrainLearnedModel(&engine, train_options).ok()) return 1;

    // Measure the per-view query time over the fully materialized lattice.
    if (!engine.MaterializeViews(engine.lattice().AllMasks()).ok()) return 1;
    core::Rewriter rewriter(&engine.facet());
    sparql::QueryEngine qe(engine.store());
    const size_t n = engine.lattice().size();
    std::vector<double> measured(n, 0.0);
    for (uint32_t mask = 0; mask < n; ++mask) {
      core::QuerySignature sig;
      sig.group_mask = mask;
      auto rewritten = rewriter.RewriteToView(sig, mask);
      if (!rewritten.ok()) return 1;
      std::vector<double> times;
      for (int rep = 0; rep < 5; ++rep) {
        WallTimer timer;
        if (!qe.Execute(*rewritten).ok()) return 1;
        times.push_back(timer.ElapsedMicros());
      }
      measured[mask] = bench::Median(times);
    }
    if (!engine.DropMaterializedViews().ok()) return 1;

    std::printf("\n[%s] measured range: %.1f - %.1f us\n\n", name.c_str(),
                *std::min_element(measured.begin(), measured.end()),
                *std::max_element(measured.begin(), measured.end()));

    TablePrinter table({"model", "pearson r", "spearman rho"});
    for (core::CostModelKind kind :
         {core::CostModelKind::kTripleCount, core::CostModelKind::kAggValueCount,
          core::CostModelKind::kNodeCount, core::CostModelKind::kLearned,
          core::CostModelKind::kRandom}) {
      auto model = engine.MakeModel(kind);
      if (!model.ok()) return 1;
      std::vector<double> estimated(n);
      for (uint32_t mask = 0; mask < n; ++mask) {
        estimated[mask] = (*model)->ViewCost(mask, *engine.profile());
      }
      table.AddRow({(*model)->name(),
                    TablePrinter::Cell(bench::Pearson(estimated, measured), 3),
                    TablePrinter::Cell(bench::Spearman(estimated, measured), 3)});
    }
    table.Print();
  }
  std::printf(
      "\nReading: a perfect relational-style proxy would score ~1.0; values\n"
      "well below 1 demonstrate the paper's point that size-based estimates\n"
      "are unreliable predictors of RDF query time.\n");
  return 0;
}
